//! Loopback integration: a real server on an ephemeral port, a real TCP
//! client, and the contract the ISSUE pins down —
//!
//! 1. service answers are **bit-identical** to direct `Analyzer` /
//!    pipeline calls on the VolComp suite,
//! 2. a warm cache answers with **zero new pavings and zero samples**,
//! 3. the factor store survives a server **restart** via the snapshot,
//! 4. corrupt or version-mismatched snapshots mean a **cold start,
//!    never a crash**, and
//! 5. protocol misuse (malformed frames, bad sources) degrades to error
//!    responses on a still-usable connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use qcoral::{Analyzer, Options};
use qcoral_mc::{Dist, UsageProfile};
use qcoral_repro::pipeline::analyze_program;
use qcoral_service::{Client, Outcome, Server, ServiceConfig};
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

fn start(cfg: ServiceConfig) -> (Server, Client) {
    let server = Server::start(cfg).expect("bind loopback");
    let client = Client::connect(server.addr()).expect("connect");
    (server, client)
}

/// A unique temp path for snapshot tests.
/// The worker bumps the scheduler's completion bookkeeping (`served`,
/// `inflight`) *after* writing the response, so a scrape issued the
/// moment a reply lands can legitimately read the pre-completion
/// values. Poll briefly for the settled state.
fn eventually(mut cond: impl FnMut() -> bool) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("condition not reached within the polling budget");
}

fn temp_snapshot(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "qcoral-service-test-{}-{tag}.json",
        std::process::id()
    ))
}

#[test]
fn volcomp_suite_is_bit_identical_to_direct_pipeline() {
    let opts = Options::strat_partcache().with_samples(800).with_seed(77);
    let (server, mut client) = start(ServiceConfig::default());
    for subj in table3_subjects() {
        for idx in 0..subj.assertions.len() {
            let source = subj.source_for(idx);
            let direct = analyze_program(&source, &SymConfig::default(), opts.clone())
                .expect("subjects parse");
            let served = client
                .analyze_program(&source, opts.clone(), None, None)
                .expect("service answers");
            assert_eq!(
                served.report.estimate, direct.target.estimate,
                "{}[{idx}]: estimate differs",
                subj.name
            );
            assert_eq!(
                served.report.per_pc, direct.target.per_pc,
                "{}[{idx}]: per-PC breakdown differs",
                subj.name
            );
            assert_eq!(served.bound_mass, Some(direct.bound_mass));
            assert_eq!(served.confidence, Some(direct.confidence()));
        }
    }
    server.shutdown();
}

#[test]
fn system_requests_with_profiles_match_direct_analyzer() {
    let source = "var x in [0, 1]; var y in [0, 1]; pc x < 0.5 && sin(y) > 0.5;";
    let profile =
        UsageProfile::uniform(2).with_dist(1, Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]));
    let opts = Options::default().with_samples(2_000).with_seed(5);
    let sys = qcoral_constraints::parse::parse_system(source).unwrap();
    let direct = Analyzer::new(opts.clone()).analyze(&sys.constraint_set, &sys.domain, &profile);

    let (server, mut client) = start(ServiceConfig::default());
    let served = client
        .analyze_system(source, opts, Some(profile))
        .expect("service answers");
    assert_eq!(served.report.estimate, direct.estimate);
    assert_eq!(served.report.per_pc, direct.per_pc);
    server.shutdown();
}

#[test]
fn warm_cache_answers_with_zero_pavings_and_samples() {
    let opts = Options::default().with_samples(3_000).with_seed(3);
    let (server, mut client) = start(ServiceConfig::default());
    let source = "var a in [0, 2]; var b in [-1, 1];
                  pc a * a < 2 && sin(b) > 0.1;
                  pc a * a >= 2 && sin(b) > 0.1;";
    let cold = client
        .analyze_system(source, opts.clone(), None)
        .expect("cold");
    assert!(cold.report.stats.samples_drawn > 0);
    assert!(cold.report.stats.pavings > 0);

    // Same query from a *new connection*: the store is server-wide.
    let mut client2 = Client::connect(server.addr()).expect("connect");
    let warm = client2.analyze_system(source, opts, None).expect("warm");
    assert_eq!(warm.report.estimate, cold.report.estimate, "bit-identical");
    assert_eq!(warm.report.per_pc, cold.report.per_pc);
    assert_eq!(warm.report.stats.pavings, 0, "no new pavings");
    assert_eq!(warm.report.stats.samples_drawn, 0, "no new samples");
    assert!(warm.report.stats.factor_store_hits > 0);

    let status = client.status().expect("status");
    assert!(status.store_entries > 0);
    assert!(status.store_hits >= warm.report.stats.factor_store_hits);
    server.shutdown();
}

/// The acceptance contract for non-uniform profiles: a warm
/// `FactorStore` hit under continuous marginals is bit-identical across
/// a process restart (snapshot round trip included), with zero pavings
/// and zero samples.
#[test]
fn nonuniform_profile_warm_hits_are_bit_identical_across_restart() {
    let snapshot = temp_snapshot("nonuniform-restart");
    let _ = std::fs::remove_file(&snapshot);
    let source = "var x in [0, 1]; var y in [0, 1];
                  pc x < 0.5 && sin(3 * y) > 0.5;
                  pc x >= 0.5 && sin(3 * y) > 0.5;";
    let profile = UsageProfile::uniform(2)
        .with_dist(0, Dist::normal(0.4, 0.2))
        .with_dist(1, Dist::exponential(3.0));
    let opts = Options::default().with_samples(2_500).with_seed(13);

    let cfg = || ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let (server, mut client) = start(cfg());
    let cold = client
        .analyze_system(source, opts.clone(), Some(profile.clone()))
        .expect("cold");
    assert!(cold.report.stats.samples_drawn > 0);
    server.shutdown(); // persists the snapshot

    // A fresh process: the snapshot warm-loads, the same profiled query
    // recomposes bit-identically with zero work.
    let (server, mut client) = start(cfg());
    let warm = client
        .analyze_system(source, opts.clone(), Some(profile.clone()))
        .expect("warm");
    assert_eq!(warm.report.estimate, cold.report.estimate, "bit-identical");
    assert_eq!(warm.report.per_pc, cold.report.per_pc);
    assert_eq!(warm.report.stats.samples_drawn, 0, "no new samples");
    assert_eq!(warm.report.stats.pavings, 0, "no new pavings");
    assert!(warm.report.stats.factor_store_hits > 0);

    // A different ε is a different stratification: it must NOT warm-hit
    // the continuous-profile entries.
    let eps_opts = opts.with_profile_epsilon(1e-4);
    let other = client
        .analyze_system(source, eps_opts, Some(profile))
        .expect("other epsilon");
    assert!(other.report.stats.samples_drawn > 0, "ε must cold-start");
    server.shutdown();
    let _ = std::fs::remove_file(&snapshot);
}

/// Program requests accept *named* marginals, resolved against the
/// parameter names server-side; unknown names and invalid parameters are
/// clean errors.
#[test]
fn program_requests_accept_named_profiles() {
    use qcoral_service::NamedDist;
    let (server, mut client) = start(ServiceConfig::default());
    let source = "program p(x in [0, 1]) { if (x > 0.75) { target(); } }";
    let opts = Options::default().with_samples(8_000).with_seed(2);
    let served = client
        .analyze_program(
            source,
            opts.clone(),
            None,
            Some(vec![NamedDist {
                var: "x".to_string(),
                dist: Dist::exponential(4.0),
            }]),
        )
        .expect("profiled program");
    // (e^{-3} − e^{-4})/(1 − e^{-4}): the Exp(4) mass of (0.75, 1].
    let truth = ((-3.0f64).exp() - (-4.0f64).exp()) / (1.0 - (-4.0f64).exp());
    assert!(
        (served.report.estimate.mean - truth).abs() < 0.01,
        "{} vs {truth}",
        served.report.estimate.mean
    );
    // And it matches the direct pipeline bit for bit.
    let direct = qcoral_repro::pipeline::analyze_program_with_profile(
        &qcoral::Analyzer::new(opts.clone()),
        source,
        &SymConfig::default(),
        &[("x".to_string(), Dist::exponential(4.0))],
    )
    .expect("direct");
    assert_eq!(served.report.estimate, direct.target.estimate);

    let err = client
        .analyze_program(
            source,
            opts.clone(),
            None,
            Some(vec![NamedDist {
                var: "nope".to_string(),
                dist: Dist::Uniform,
            }]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown variable"), "{err}");
    let err = client
        .analyze_program(
            source,
            opts,
            None,
            Some(vec![NamedDist {
                var: "x".to_string(),
                dist: Dist::Normal {
                    mu: 0.0,
                    sigma: -1.0,
                },
            }]),
        )
        .unwrap_err();
    assert!(err.to_string().contains("sigma"), "{err}");
    server.shutdown();
}

/// Continuous dists with hostile parameters are validated like
/// piecewise ones: rejected with an error, never a panic.
#[test]
fn hostile_continuous_profiles_are_rejected() {
    let (server, mut client) = start(ServiceConfig::default());
    let source = "var x in [0, 1]; pc x < 0.5;";
    let opts = Options::default().with_samples(500);
    for (dist, needle) in [
        (
            Dist::Normal {
                mu: 0.0,
                sigma: 0.0,
            },
            "sigma",
        ),
        (
            Dist::Normal {
                mu: f64::NAN,
                sigma: 1.0,
            },
            "mu",
        ),
        (Dist::Exponential { lambda: 0.0 }, "rate"),
        (
            Dist::TruncatedNormal {
                mu: 0.5,
                sigma: 0.1,
                lo: 0.9,
                hi: 0.1,
            },
            "lo < hi",
        ),
        // Well-formed truncation that cannot place mass in [0, 1]: must
        // be an error, not an exact-looking probability 0.
        (
            Dist::TruncatedNormal {
                mu: 5.5,
                sigma: 0.5,
                lo: 5.0,
                hi: 6.0,
            },
            "overlap",
        ),
    ] {
        let profile = UsageProfile::uniform(1).with_dist(0, dist.clone());
        let err = client
            .analyze_system(source, opts.clone(), Some(profile))
            .unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "{dist:?}: expected `{needle}` in `{err}`"
        );
    }
    server.shutdown();
}

#[test]
fn factor_store_survives_restart_via_snapshot() {
    let snapshot = temp_snapshot("restart");
    let _ = std::fs::remove_file(&snapshot);
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let opts = Options::default().with_samples(2_500).with_seed(11);
    let source = "var u in [0, 4]; var v in [0, 4];
                  pc u + v < 3 && sin(u * v) > 0.2;";

    let (server, mut client) = start(cfg.clone());
    let first = client
        .analyze_system(source, opts.clone(), None)
        .expect("first run");
    assert!(first.report.stats.samples_drawn > 0);
    server.shutdown(); // persists the final snapshot
    assert!(snapshot.exists(), "snapshot written on shutdown");

    // A brand-new process-equivalent: fresh server, same snapshot path.
    let (server, mut client) = start(cfg);
    let warm = client.analyze_system(source, opts, None).expect("warm run");
    assert_eq!(
        warm.report.estimate, first.report.estimate,
        "bit-identical across restart"
    );
    assert_eq!(warm.report.stats.pavings, 0, "restart run must not pave");
    assert_eq!(
        warm.report.stats.samples_drawn, 0,
        "restart run must not sample"
    );
    assert!(warm.report.stats.factor_store_hits > 0);
    server.shutdown();
    let _ = std::fs::remove_file(&snapshot);
}

/// The iterative engine over the wire: a `target_stderr` request either
/// meets the target or reports `max_rounds` exhaustion via
/// `stats.target_met`, and a warm repeat of the same request recomposes
/// from the factor store without drawing a single sample.
#[test]
fn target_stderr_requests_converge_and_warm_repeats_are_free() {
    let (server, mut client) = start(ServiceConfig::default());
    // Mixed system: exact box factor + noisy trig factor.
    let source = "var x in [0, 1]; var y in [-2, 2]; var z in [-2, 2];
                  pc x < 0.4 && sin(y * z) > 0.25;";
    let opts = Options::default()
        .with_samples(1_000)
        .with_seed(8)
        .with_target_stderr(2e-3)
        .with_round_budget(1_000)
        .with_max_rounds(50);
    let cold = client
        .analyze_system(source, opts.clone(), None)
        .expect("iterative request");
    assert!(cold.report.stats.rounds >= 1);
    assert!(cold.report.stats.target_met, "{:?}", cold.report.stats);
    assert!(cold.report.estimate.std_dev() <= 2e-3);
    assert!(cold.report.stats.samples_drawn > 0);

    // Warm repeat from a new connection: zero samples, zero pavings,
    // bit-identical estimate.
    let mut client2 = Client::connect(server.addr()).expect("connect");
    let warm = client2
        .analyze_system(source, opts, None)
        .expect("warm repeat");
    assert_eq!(warm.report.estimate, cold.report.estimate);
    assert_eq!(warm.report.stats.samples_drawn, 0, "warm repeat sampled");
    assert_eq!(warm.report.stats.pavings, 0, "warm repeat paved");
    assert!(warm.report.stats.factor_store_hits > 0);
    assert!(warm.report.stats.target_met);

    // An unreachable target is flagged, not spun on: max_rounds bounds
    // the work and target_met reports the shortfall.
    let strict = Options::default()
        .with_samples(500)
        .with_seed(9)
        .with_target_stderr(1e-12)
        .with_round_budget(500)
        .with_max_rounds(2);
    let capped = client
        .analyze_system(source, strict, None)
        .expect("capped request");
    assert!(!capped.report.stats.target_met, "{:?}", capped.report.stats);
    assert_eq!(capped.report.stats.rounds, 2);

    // Resource validation: a round plan whose worst case blows the
    // server's sample ceiling is rejected up front.
    let hostile = Options::default()
        .with_samples(1_000)
        .with_target_stderr(1e-12)
        .with_round_budget(u64::MAX / 2)
        .with_max_rounds(u64::MAX / 2);
    let err = client.analyze_system(source, hostile, None);
    match err {
        Err(qcoral_service::ClientError::Remote(m)) => {
            assert!(m.contains("worst case"), "unexpected message: {m}")
        }
        other => panic!("hostile round plan not rejected: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn corrupt_or_stale_snapshots_cold_start_without_crashing() {
    let opts = Options::default().with_samples(500).with_seed(2);
    let source = "var x in [0, 1]; pc x < 0.5;";
    for (tag, contents) in [
        ("garbage", "not json at all {{{".to_string()),
        (
            "truncated",
            "{\"version\":1,\"entries\":[{\"opts_fp\":1".to_string(),
        ),
        (
            "stale-version",
            "{\"version\":999,\"entries\":[]}".to_string(),
        ),
        (
            "bad-entries",
            "{\"version\":1,\"entries\":[{\"opts_fp\":1,\"fingerprint\":2,\
             \"box_bits\":[1,2,3],\"profile_bits\":[],\"mean_bits\":0,\
             \"variance_bits\":0}]}"
                .to_string(),
        ),
    ] {
        let snapshot = temp_snapshot(tag);
        std::fs::write(&snapshot, contents).unwrap();
        let cfg = ServiceConfig {
            snapshot: Some(snapshot.clone()),
            ..ServiceConfig::default()
        };
        let (server, mut client) = start(cfg);
        // Cold start: the damaged snapshot contributed nothing.
        assert_eq!(server.factor_store().len(), 0, "{tag}: not cold");
        // And the server still works.
        let r = client
            .analyze_system(source, opts.clone(), None)
            .unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert!((r.report.estimate.mean - 0.5).abs() < 0.1);
        server.shutdown();
        let _ = std::fs::remove_file(&snapshot);
    }
}

#[test]
fn snapshot_is_versioned_json() {
    let snapshot = temp_snapshot("format");
    let _ = std::fs::remove_file(&snapshot);
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let (server, mut client) = start(cfg);
    client
        .analyze_system(
            "var x in [0, 1]; pc x < 0.25;",
            Options::default().with_samples(400),
            None,
        )
        .expect("query");
    server.shutdown();
    let text = std::fs::read_to_string(&snapshot).expect("snapshot exists");
    let v = serde_json::Value::parse(&text).expect("snapshot is valid JSON");
    assert_eq!(
        v.get("version"),
        Some(&serde_json::Value::Number("2".to_string())),
        "snapshot carries its version"
    );
    assert!(matches!(
        v.get("entries"),
        Some(serde_json::Value::Array(entries))
            if !entries.is_empty()
                && entries.iter().all(|e| e.get("entry").is_some() && e.get("crc").is_some())
    ));
    assert!(
        v.get("footer_crc").is_some(),
        "snapshot carries a footer checksum"
    );
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn concurrent_saves_never_tear_the_snapshot() {
    let snapshot = temp_snapshot("concurrent-saves");
    let _ = std::fs::remove_file(&snapshot);
    let store = std::sync::Arc::new(qcoral_service::PersistentStore::open(
        Some(snapshot.clone()),
        4096,
    ));
    // Hammer the two save entry points the server races (per-batch hook
    // and persist timer) while entries stream in: unserialized saves
    // could interleave the shared tmp-write/rename pair and rename a
    // torn file into place.
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..50u64 {
                    store.factor_store().absorb([qcoral::FactorStoreEntry {
                        opts_fp: t,
                        fingerprint: ((t as u128) << 64) | i as u128,
                        box_bits: vec![i, i + 1],
                        profile_bits: vec![],
                        mean_bits: 0.5f64.to_bits(),
                        variance_bits: 0.0f64.to_bits(),
                    }]);
                    if t % 2 == 0 {
                        store.save_if_dirty().expect("save io");
                    } else {
                        store
                            .save_if_dirty_debounced(std::time::Duration::from_millis(1))
                            .expect("save io");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    store.save_if_dirty().expect("final save");
    let text = std::fs::read_to_string(&snapshot).expect("snapshot exists");
    let v = serde_json::Value::parse(&text).expect("snapshot parses — not torn");
    assert!(matches!(
        v.get("entries"),
        Some(serde_json::Value::Array(_))
    ));
    // A reopen warm-loads every entry the racing writers produced.
    let reopened = qcoral_service::PersistentStore::open(Some(snapshot.clone()), 4096);
    assert_eq!(reopened.factor_store().len(), 200);
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn malformed_frames_get_error_responses_and_the_connection_survives() {
    let (server, _client) = start(ServiceConfig::default());
    let stream = TcpStream::connect(server.addr()).expect("connect raw");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Unparseable frame with a salvageable id.
    writer
        .write_all(b"{\"id\":9,\"op\":\"Nonsense\"}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let r = qcoral_service::wire::decode_response(&line).expect("error response decodes");
    assert_eq!(r.id, 9, "id salvaged from the broken frame");
    assert!(matches!(r.outcome, Outcome::Error { .. }));

    // Complete garbage.
    line.clear();
    writer.write_all(b"complete garbage\n").unwrap();
    reader.read_line(&mut line).unwrap();
    let r = qcoral_service::wire::decode_response(&line).expect("error response decodes");
    assert_eq!(r.id, 0);
    assert!(matches!(r.outcome, Outcome::Error { .. }));

    // Invalid UTF-8 inside a JSON string: must be rejected outright,
    // not lossily decoded into a parseable-but-corrupted request.
    line.clear();
    writer
        .write_all(b"{\"id\":11,\"op\":{\"System\":{\"source\":\"\xFF\"}}}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let r = qcoral_service::wire::decode_response(&line).expect("error response decodes");
    assert!(
        matches!(&r.outcome, Outcome::Error { message } if message.contains("UTF-8")),
        "invalid UTF-8 must be an explicit error, got {:?}",
        r.outcome
    );

    // The same connection still answers real requests.
    line.clear();
    writer
        .write_all(b"{\"id\":10,\"op\":\"Status\"}\n")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let r = qcoral_service::wire::decode_response(&line).expect("status decodes");
    assert_eq!(r.id, 10);
    assert!(matches!(r.outcome, Outcome::Status(_)));
    server.shutdown();
}

#[test]
fn connection_limit_refusals_surface_as_remote_errors() {
    // With a limit of 0 every connection is refused with an id-0 error
    // line; the client must surface that message, not skip the frame
    // and report a bare EOF.
    let cfg = ServiceConfig {
        max_connections: 0,
        ..ServiceConfig::default()
    };
    let server = Server::start(cfg).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("tcp connect");
    let e = client.status().unwrap_err();
    assert!(
        e.to_string().contains("connection limit"),
        "expected the refusal message, got: {e}"
    );
    server.shutdown();
}

#[test]
fn invalid_inputs_are_errors_not_crashes() {
    let (server, mut client) = start(ServiceConfig::default());
    // Unparseable system source.
    let e = client
        .analyze_system("var x in", Options::default().with_samples(100), None)
        .unwrap_err();
    assert!(e.to_string().contains("parse"), "{e}");
    // Profile arity mismatch.
    let e = client
        .analyze_system(
            "var x in [0, 1]; pc x < 0.5;",
            Options::default().with_samples(100),
            Some(UsageProfile::uniform(3)),
        )
        .unwrap_err();
    assert!(e.to_string().contains("covers"), "{e}");
    // Unparseable program source.
    let e = client
        .analyze_program(
            "program p(",
            Options::default().with_samples(100),
            None,
            None,
        )
        .unwrap_err();
    assert!(e.to_string().contains("parse"), "{e}");
    // The server survived all of it.
    assert!(client.status().is_ok());
    server.shutdown();
}

#[test]
fn hostile_profiles_are_validated_and_normalized() {
    let (server, mut client) = start(ServiceConfig::default());
    let source = "var x in [0, 1]; pc x < 0.5;";
    let opts = Options::default().with_samples(2_000).with_seed(4);
    // Deserialization bypasses Dist::piecewise, so craft invalid dists
    // over the wire via the raw protocol types.
    let bad_arity =
        UsageProfile::uniform(1).with_dist(0, Dist::piecewise(vec![0.0, 0.5, 1.0], vec![1.0, 1.0]));
    // Mutate via JSON to bypass the constructor: wrong weight count.
    let mut line = qcoral_service::wire::encode_request(&qcoral_service::Request {
        id: 1,
        op: qcoral_service::Op::System {
            source: source.to_string(),
            options: opts.clone(),
            profile: Some(bad_arity),
        },
    });
    line = line.replace("\"weights\":[0.5,0.5]", "\"weights\":[0.5,0.5,0.5]");
    let decoded = qcoral_service::wire::decode_request(&line).expect("still well-formed JSON");
    let qcoral_service::Op::System { profile, .. } = &decoded.op else {
        panic!("System op expected");
    };
    assert!(profile.is_some(), "mutation kept the profile");
    let outcome = client.call(decoded.op).expect("transport ok").outcome;
    assert!(
        matches!(&outcome, Outcome::Error { message } if message.contains("weight")),
        "wrong-arity weights must be rejected, got {outcome:?}"
    );

    // Unnormalized weights are accepted but renormalized: identical to
    // the properly constructed profile.
    let normalized =
        UsageProfile::uniform(1).with_dist(0, Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]));
    let reference = client
        .analyze_system(source, opts.clone(), Some(normalized))
        .expect("reference");
    let mut raw = qcoral_service::wire::encode_request(&qcoral_service::Request {
        id: 2,
        op: qcoral_service::Op::System {
            source: source.to_string(),
            options: opts,
            profile: None,
        },
    });
    raw = raw.replace(
        "\"profile\":null",
        "\"profile\":{\"dists\":[{\"Piecewise\":{\"edges\":[0.0,0.5,1.0],\"weights\":[30.0,10.0]}}]}",
    );
    let decoded = qcoral_service::wire::decode_request(&raw).expect("well-formed");
    match client.call(decoded.op).expect("transport ok").outcome {
        Outcome::Report(r) => assert_eq!(
            r.report.estimate, reference.report.estimate,
            "renormalized profile must match the constructor-built one"
        ),
        other => panic!("expected a report, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn resource_ceilings_reject_hostile_options() {
    let (server, mut client) = start(ServiceConfig::default());
    let source = "var x in [0, 1]; pc x < 0.5;";
    // A u64::MAX sample budget must be rejected, not pin a worker.
    let e = client
        .analyze_system(source, Options::default().with_samples(u64::MAX), None)
        .unwrap_err();
    assert!(e.to_string().contains("limit"), "{e}");
    // Zero samples would panic the sampler's n > 0 assert.
    let e = client
        .analyze_system(source, Options::default().with_samples(0), None)
        .unwrap_err();
    assert!(e.to_string().contains("at least 1"), "{e}");
    // Absurd symbolic-execution depth.
    let e = client
        .analyze_program(
            "program p(x in [0, 1]) { if (x > 0.5) { target(); } }",
            Options::default().with_samples(100),
            Some(1 << 40),
            None,
        )
        .unwrap_err();
    assert!(e.to_string().contains("limit"), "{e}");
    // Reasonable requests still work afterwards.
    let r = client
        .analyze_system(source, Options::default().with_samples(500), None)
        .expect("sane request");
    assert!((r.report.estimate.mean - 0.5).abs() < 0.1);
    server.shutdown();
}

/// The `metrics` op: a scrape after real traffic must expose the
/// scheduler's, factor store's, and analyzer's metric families in
/// Prometheus-style text exposition — with live values that reflect the
/// requests actually served.
#[test]
fn metrics_op_exposes_required_families() {
    let (server, mut client) = start(ServiceConfig::default());
    let source = "var x in [0, 1]; pc x < 0.5;";
    client
        .analyze_system(source, Options::default().with_samples(500), None)
        .expect("request serves");
    let m = client.metrics().expect("metrics scrape");
    assert_eq!(m.protocol_version, qcoral_service::PROTOCOL_VERSION);
    // Per-instance families (server registry)…
    for family in [
        "qcoral_scheduler_served_total",
        "qcoral_scheduler_rejected_total",
        "qcoral_scheduler_shed_total",
        "qcoral_scheduler_queue_depth",
        "qcoral_scheduler_inflight",
        "qcoral_scheduler_queue_wait_us",
        "qcoral_scheduler_batch_occupancy",
        "qcoral_factor_store_hits_total",
        "qcoral_factor_store_misses_total",
        "qcoral_request_duration_us",
        "qcoral_store_save_duration_us",
        // …and process-wide families (global registry).
        "qcoral_analyses_total",
        "qcoral_samples_drawn_total",
        "qcoral_pavings_total",
        "qcoral_tape_cache_hits_total",
        "qcoral_analysis_duration_us",
    ] {
        assert!(
            m.text.contains(&format!("# TYPE {family} ")),
            "family {family} missing from exposition:\n{}",
            m.text
        );
    }
    // Histograms render cumulative buckets; counters carry real traffic.
    assert!(m.text.contains("qcoral_request_duration_us_bucket{le=\""));
    assert!(m.text.contains("qcoral_request_duration_us_count 1"));
    // `served` increments after the response write — poll for it.
    eventually(|| {
        let m = client.metrics().expect("metrics scrape");
        m.text
            .lines()
            .find_map(|l| l.strip_prefix("qcoral_scheduler_served_total "))
            .expect("served counter has a value line")
            .trim()
            .parse::<u64>()
            .expect("integer value")
            >= 1
    });
    // The same bytes flow through Server::metrics_text (the daemon's
    // periodic log) — same per-instance families, fresher values.
    assert!(server
        .metrics_text()
        .contains("qcoral_scheduler_served_total"));
    server.shutdown();
}

/// `status` must surface the *live* queue-depth and batch-occupancy
/// gauges next to the lifetime totals: an idle server reads zero on
/// both, while served totals persist.
#[test]
fn status_surfaces_live_queue_gauges() {
    let (server, mut client) = start(ServiceConfig::default());
    client
        .analyze_system(
            "var x in [0, 1]; pc x < 0.5;",
            Options::default().with_samples(500),
            None,
        )
        .expect("request serves");
    let status = client.status().expect("status");
    assert_eq!(status.protocol_version, qcoral_service::PROTOCOL_VERSION);
    // The reply arrives before the worker's completion bookkeeping
    // (served++, inflight--): poll until the server reads idle, with
    // the lifetime total persisting and both live gauges drained.
    eventually(|| {
        let s = client.status().expect("status");
        s.requests_served >= 1 && s.queue_depth == 0 && s.inflight == 0
    });
    server.shutdown();
}

/// Per-request tracing over the wire: `Options::trace` returns a span
/// list covering the service layer (queue wait) and the analysis
/// (paving, compilation, sampling); the estimate stays bit-identical to
/// the untraced request, and untraced requests carry no trace.
#[test]
fn traced_requests_return_spans_and_identical_estimates() {
    let (server, mut client) = start(ServiceConfig::default());
    let source = "var a in [0, 2]; var b in [-1, 1];
                  pc a * a < 2 && sin(b) > 0.1;";
    let opts = Options::strat_partcache().with_samples(1_000).with_seed(9);
    let untraced = client
        .analyze_system(source, opts.clone(), None)
        .expect("untraced");
    assert!(
        untraced.report.trace.is_none(),
        "untraced request got spans"
    );

    let traced = client
        .analyze_system(source, opts.with_trace(true), None)
        .expect("traced");
    assert_eq!(
        traced.report.estimate, untraced.report.estimate,
        "tracing changed the served estimate"
    );
    assert_eq!(traced.report.per_pc, untraced.report.per_pc);
    let trace = traced.report.trace.as_ref().expect("trace in response");
    assert!(!trace.spans.is_empty());
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["queue_wait", "analyze", "pc", "factor"] {
        assert!(
            names.contains(&expected),
            "span {expected} missing: {names:?}"
        );
    }

    // The Chrome export is well-formed trace-event JSON with one
    // complete ("ph":"X") event per span.
    let json = trace.to_chrome_json();
    let doc = serde_json::Value::parse(&json).expect("chrome trace parses");
    let events = match doc.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    assert_eq!(events.len(), trace.spans.len());
    for ev in events {
        assert_eq!(
            ev.get("ph"),
            Some(&serde_json::Value::String("X".to_string()))
        );
        assert!(ev.get("name").is_some() && ev.get("ts").is_some() && ev.get("dur").is_some());
    }
    server.shutdown();
}

/// Traces ride `Op::Program` too, with the pipeline's parse and symexec
/// stages on the same timeline as the queue wait and the analysis.
#[test]
fn program_traces_cover_the_whole_pipeline() {
    let (server, mut client) = start(ServiceConfig::default());
    let source = "program p(x in [0, 1]) { if (x > 0.75) { target(); } }";
    let opts = Options::default().with_samples(800).with_trace(true);
    let r = client
        .analyze_program(source, opts, None, None)
        .expect("traced program");
    let trace = r.report.trace.as_ref().expect("trace in response");
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["queue_wait", "parse", "symexec", "analyze"] {
        assert!(
            names.contains(&expected),
            "span {expected} missing: {names:?}"
        );
    }
    server.shutdown();
}
