//! Command-line client for a running `qcoral-serviced`.
//!
//! ```text
//! qcoralctl --addr HOST:PORT status
//! qcoralctl --addr HOST:PORT health
//! qcoralctl --addr HOST:PORT metrics
//! qcoralctl --addr HOST:PORT system  "var x in [0,1]; pc x < 0.5;" [options]
//! qcoralctl --addr HOST:PORT program FILE.mj [options] [--max-depth N]
//!
//! options: [--samples N] [--seed N] [--plain|--strat] [--parallel]
//!          [--target-stderr X] [--round-budget N] [--max-rounds N]
//!          [--allocation equal|proportional|variance|importance]
//!          [--is-threshold X] [--paver-boxes N]
//!          [--profile SPEC] [--profile-epsilon X]
//!          [--retries N] [--timeout MS] [--trace FILE]
//! ```
//!
//! `health` prints the server's fault-tolerance report: what startup
//! recovery found (snapshot/WAL entries, corruption counts) plus
//! shed/panicked/rejected counters.
//!
//! `metrics` prints the server's metric families as Prometheus-style
//! text exposition (counters, gauges, and histograms with
//! `_bucket{le="…"}` series).
//!
//! `--trace FILE` (for `system`/`program`) requests a per-request
//! execution trace and writes it to FILE as Chrome trace-event JSON —
//! load it in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`
//! to see queue wait, parsing, paving, tape compilation and per-round
//! sampling spans on one timeline. Tracing never changes the estimates:
//! span clocks are monotonic timers, not randomness.
//!
//! `--retries N` retries connects and transient transport failures up
//! to N times with capped exponential backoff (safe: identical requests
//! get bit-identical answers). `--timeout MS` attaches a request
//! deadline — on expiry the server returns a *partial* report with
//! `stats.deadline_exceeded: true` instead of an error.
//!
//! `--target-stderr` switches the server to the iterative,
//! variance-driven engine: sampling rounds of `--round-budget` samples
//! continue until the composed standard error reaches `X` or
//! `--max-rounds` is exhausted (check `stats.target_met` in the reply).
//!
//! `--allocation importance` enables per-factor rare-event escalation:
//! factors whose pilot estimate falls below `--is-threshold` (default
//! 0.01) hand their boundary budget to the paver-seeded adaptive
//! importance-sampling engine (check `stats.is_factors` /
//! `stats.is_fallbacks` in the reply). For ~1e-8 events pair it with a
//! finer paving via `--paver-boxes 128` — the boundary boxes seed the
//! IS proposal and bound its importance weights.
//!
//! `--profile` attaches a non-uniform usage profile, one `name ~ dist`
//! entry per input separated by `;`, e.g.
//!
//! ```text
//! --profile 'x ~ N(0, 1); y ~ Exp(2); z ~ TN(0.5, 0.1, 0, 1); h ~ H(0, 0.5, 1 | 3, 1)'
//! ```
//!
//! Unmentioned inputs stay uniform. For `system` requests the variable
//! names are resolved locally against the `var …;` declarations; for
//! `program` requests the named marginals travel on the wire and the
//! server resolves them against the program's parameters.
//! `--profile-epsilon` tunes the discretization error bound ε.
//!
//! `system` takes the constraint source inline (or `-` to read stdin);
//! `program` takes a MiniJ file path (or `-`). Prints the response as
//! pretty JSON; exits 1 on a server-side error, 2 on usage errors.

use std::io::Read;
use std::process::exit;

use qcoral::Options;
use qcoral_constraints::parse::parse_system;
use qcoral_mc::{parse_profile_spec, Dist, UsageProfile};
use qcoral_repro::pipeline::resolve_profile;
use qcoral_service::{Client, ClientError, NamedDist, RetryPolicy};

fn usage() -> ! {
    eprintln!(
        "usage: qcoralctl --addr HOST:PORT <status|health|metrics|system SRC|program FILE> \
         [--samples N] [--seed N] [--plain|--strat] [--parallel] [--max-depth N] \
         [--target-stderr X] [--round-budget N] [--max-rounds N] \
         [--allocation equal|proportional|variance|importance] \
         [--is-threshold X] [--paver-boxes N] \
         [--profile 'x ~ N(0,1); y ~ Exp(2)'] [--profile-epsilon X] \
         [--retries N] [--timeout MS] [--trace FILE]"
    );
    exit(2)
}

struct Cli {
    addr: String,
    cmd: String,
    input: Option<String>,
    options: Options,
    max_depth: Option<u64>,
    profile: Option<Vec<(String, Dist)>>,
    retries: u32,
    trace_out: Option<String>,
}

fn parse_cli() -> Cli {
    let mut addr = None;
    let mut cmd = None;
    let mut input = None;
    let mut preset: fn() -> Options = Options::default;
    let mut samples = None;
    let mut seed = None;
    let mut parallel = false;
    let mut max_depth = None;
    let mut target_stderr = None;
    let mut round_budget = None;
    let mut max_rounds = None;
    let mut allocation = None;
    let mut is_threshold = None;
    let mut paver_boxes = None;
    let mut profile = None;
    let mut profile_epsilon = None;
    let mut retries = 0u32;
    let mut timeout_ms = None;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => addr = Some(value()),
            "--samples" => samples = Some(parse(&value())),
            "--seed" => seed = Some(parse(&value())),
            "--max-depth" => max_depth = Some(parse(&value())),
            "--target-stderr" => target_stderr = Some(parse_float(&value())),
            "--round-budget" => round_budget = Some(parse(&value())),
            "--max-rounds" => max_rounds = Some(parse(&value())),
            "--allocation" => allocation = Some(parse_allocation(&value())),
            "--is-threshold" => is_threshold = Some(parse_float(&value())),
            "--paver-boxes" => paver_boxes = Some(parse(&value()) as usize),
            "--profile" => {
                profile = Some(parse_profile_spec(&value()).unwrap_or_else(|e| {
                    eprintln!("invalid --profile: {e}");
                    usage()
                }))
            }
            "--profile-epsilon" => profile_epsilon = Some(parse_float(&value())),
            "--retries" => retries = parse(&value()) as u32,
            "--timeout" => timeout_ms = Some(parse(&value())),
            "--trace" => trace_out = Some(value()),
            "--plain" => preset = Options::plain,
            "--strat" => preset = Options::strat,
            "--parallel" => parallel = true,
            "--help" | "-h" => usage(),
            other if cmd.is_none() => cmd = Some(other.to_string()),
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                usage()
            }
        }
    }
    let (Some(addr), Some(cmd)) = (addr, cmd) else {
        usage()
    };
    // Scalar flags compose onto the preset regardless of flag order.
    let mut options = preset();
    if let Some(samples) = samples {
        options.samples = samples;
    }
    if let Some(seed) = seed {
        options.seed = seed;
    }
    if let Some(target) = target_stderr {
        options.target_stderr = Some(target);
    }
    if let Some(budget) = round_budget {
        options.round_budget = budget;
    }
    if let Some(rounds) = max_rounds {
        options.max_rounds = rounds;
    }
    if let Some(allocation) = allocation {
        options.allocation = allocation;
    }
    if let Some(threshold) = is_threshold {
        options.is_threshold = threshold;
    }
    if let Some(boxes) = paver_boxes {
        options.paver.max_boxes = boxes;
    }
    if let Some(eps) = profile_epsilon {
        options.profile_epsilon = eps;
    }
    if let Some(ms) = timeout_ms {
        options.deadline_ms = Some(ms);
    }
    options.parallel = parallel;
    options.trace = trace_out.is_some();
    Cli {
        addr,
        cmd,
        input,
        options,
        max_depth,
        profile,
        retries,
        trace_out,
    }
}

/// Writes the response's trace as Chrome trace-event JSON. Exits 1 when
/// the user asked for a trace but the server answered without one.
fn write_trace(path: &str, response: &qcoral_service::AnalysisResponse) {
    let Some(trace) = &response.report.trace else {
        eprintln!("server returned no trace (check its protocol version)");
        exit(1)
    };
    if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
        eprintln!("writing {path}: {e}");
        exit(1)
    }
}

/// Resolves the `--profile` names for a `system` request against the
/// `var …;` declarations of the source (the server expects a positional
/// profile there), so name typos and domain-incompatible distributions
/// fail client-side. Shares `pipeline::resolve_profile` with the
/// server's `program` path.
fn system_profile(source: &str, named: &[(String, Dist)]) -> UsageProfile {
    let sys = parse_system(source).unwrap_or_else(|e| {
        eprintln!("cannot resolve --profile names, source does not parse: {e}");
        exit(1)
    });
    resolve_profile(&sys.domain, named).unwrap_or_else(|e| {
        eprintln!("invalid --profile: {e}");
        exit(1)
    })
}

fn parse_allocation(s: &str) -> qcoral_mc::Allocation {
    use qcoral_mc::Allocation::*;
    match s {
        "equal" => EqualPerStratum,
        "proportional" => Proportional,
        "variance" => VarianceAdaptive,
        "importance" => ImportanceAdaptive,
        other => {
            eprintln!(
                "unknown allocation `{other}` (expected equal|proportional|variance|importance)"
            );
            usage()
        }
    }
}

fn parse(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got `{s}`");
        usage()
    })
}

fn parse_float(s: &str) -> f64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got `{s}`");
        usage()
    })
}

fn read_input(spec: &str, as_file: bool) -> String {
    if spec == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .unwrap_or_else(|e| {
                eprintln!("reading stdin: {e}");
                exit(1)
            });
        buf
    } else if as_file {
        std::fs::read_to_string(spec).unwrap_or_else(|e| {
            eprintln!("reading {spec}: {e}");
            exit(1)
        })
    } else {
        spec.to_string()
    }
}

fn main() {
    let cli = parse_cli();
    let policy = RetryPolicy::with_retries(cli.retries);
    let mut client = Client::connect_with(&cli.addr, policy).unwrap_or_else(|e| {
        eprintln!("connecting to {}: {e}", cli.addr);
        exit(1)
    });
    let result = match cli.cmd.as_str() {
        "status" => client
            .status()
            .map(|s| serde_json::to_string_pretty(&s).expect("status serializes")),
        "health" => client
            .health()
            .map(|h| serde_json::to_string_pretty(&h).expect("health serializes")),
        "metrics" => client.metrics().map(|m| m.text.trim_end().to_string()),
        "system" => {
            let src = read_input(cli.input.as_deref().unwrap_or_else(|| usage()), false);
            let profile = cli.profile.as_deref().map(|n| system_profile(&src, n));
            client.analyze_system(&src, cli.options, profile).map(|r| {
                if let Some(path) = &cli.trace_out {
                    write_trace(path, &r);
                }
                serde_json::to_string_pretty(&r).expect("report serializes")
            })
        }
        "program" => {
            let src = read_input(cli.input.as_deref().unwrap_or_else(|| usage()), true);
            let profile = cli.profile.map(|named| {
                named
                    .into_iter()
                    .map(|(var, dist)| NamedDist { var, dist })
                    .collect()
            });
            client
                .analyze_program(&src, cli.options, cli.max_depth, profile)
                .map(|r| {
                    if let Some(path) = &cli.trace_out {
                        write_trace(path, &r);
                    }
                    serde_json::to_string_pretty(&r).expect("report serializes")
                })
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    };
    match result {
        Ok(json) => {
            // A downstream that stops reading (`qcoralctl … | grep -q`)
            // closes the pipe; that is not an error worth reporting.
            use std::io::Write;
            if let Err(e) = writeln!(std::io::stdout(), "{json}") {
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    eprintln!("writing output: {e}");
                    exit(1)
                }
            }
        }
        Err(ClientError::Remote(m)) => {
            eprintln!("server error: {m}");
            exit(1)
        }
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    }
}
