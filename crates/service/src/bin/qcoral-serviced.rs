//! The quantification server daemon.
//!
//! ```text
//! qcoral-serviced [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                 [--max-batch N] [--store-cap N] [--snapshot PATH]
//! ```
//!
//! Prints `listening on <addr>` once ready (port 0 in `--addr` binds an
//! ephemeral port and prints the resolved one), then serves until
//! killed. With `--snapshot`, the cross-run factor cache is warm-loaded
//! at startup and persisted after every micro-batch.

use std::path::PathBuf;
use std::process::exit;

use qcoral_service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: qcoral-serviced [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--max-batch N] [--store-cap N] [--snapshot PATH]"
    );
    exit(2)
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = value(),
            "--workers" => cfg.workers = parse(&value()),
            "--queue-cap" => cfg.queue_cap = parse(&value()),
            "--max-batch" => cfg.max_batch = parse(&value()),
            "--store-cap" => cfg.store_cap = parse(&value()),
            "--snapshot" => cfg.snapshot = Some(PathBuf::from(value())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    match Server::start(cfg) {
        Ok(server) => {
            println!("listening on {}", server.addr());
            server.wait();
        }
        Err(e) => {
            eprintln!("qcoral-serviced: {e}");
            exit(1);
        }
    }
}

fn parse(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got `{s}`");
        usage()
    })
}
