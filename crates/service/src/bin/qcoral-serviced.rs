//! The quantification server daemon.
//!
//! ```text
//! qcoral-serviced [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                 [--max-batch N] [--store-cap N] [--snapshot PATH]
//! ```
//!
//! Prints `listening on <addr>` once ready (port 0 in `--addr` binds an
//! ephemeral port and prints the resolved one), then serves until
//! stopped. With `--snapshot`, the cross-run factor cache is recovered
//! at startup (snapshot + write-ahead-log replay; the recovery outcome
//! is logged) and persisted after every micro-batch.
//!
//! Diagnostics go to stderr as single-line JSON records
//! (`{"ts":…,"level":"info","event":…,…}`), level-filtered by the
//! `QCORAL_LOG` environment variable (`error`/`warn`/`info`/`debug`;
//! default `info`). A metrics digest — the same Prometheus-style text
//! the `metrics` protocol op serves — is logged every 60 s.
//!
//! On SIGTERM/SIGINT the daemon shuts down gracefully: it stops
//! accepting connections, drains the in-flight micro-batch, writes a
//! final snapshot (which also truncates the WAL), and exits. A second
//! signal during the drain is ignored — `kill -9` is the escalation,
//! and crash recovery handles it.

use std::path::PathBuf;
use std::process::exit;

use qcoral_obs::log;
use qcoral_service::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: qcoral-serviced [--addr HOST:PORT] [--workers N] [--queue-cap N] \
         [--max-batch N] [--store-cap N] [--snapshot PATH]"
    );
    exit(2)
}

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only the async-signal-safe atomic store happens here; the main
        // loop observes it and runs the actual shutdown.
        TERMINATE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // POSIX `signal(2)`, declared directly (no libc crate in the
        // workspace). The return value (the previous handler) is unused.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = value(),
            "--workers" => cfg.workers = parse(&value()),
            "--queue-cap" => cfg.queue_cap = parse(&value()),
            "--max-batch" => cfg.max_batch = parse(&value()),
            "--store-cap" => cfg.store_cap = parse(&value()),
            "--snapshot" => cfg.snapshot = Some(PathBuf::from(value())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    let has_snapshot = cfg.snapshot.is_some();
    match Server::start(cfg) {
        Ok(server) => {
            if has_snapshot {
                let r = server.recovery_report();
                log::info(
                    "factor_store_recovery",
                    &[(
                        "report",
                        serde_json::to_string(r).expect("recovery report serializes"),
                    )],
                );
            }
            // Plain stdout on purpose: harnesses wait for this exact
            // line to learn the resolved address.
            println!("listening on {}", server.addr());
            run(server);
        }
        Err(e) => {
            log::error("startup_failed", &[("error", e.to_string())]);
            exit(1);
        }
    }
}

#[cfg(unix)]
fn run(server: Server) {
    signals::install();
    let mut ticks: u64 = 0;
    while !signals::requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
        ticks += 1;
        // Periodic metrics digest: the full exposition as one log
        // record, so operators without a scraper still get a time
        // series out of plain stderr capture.
        if ticks.is_multiple_of(600) {
            log::info("metrics_snapshot", &[("exposition", server.metrics_text())]);
        }
    }
    log::info(
        "signal_received",
        &[("action", "draining and persisting before exit".to_string())],
    );
    // Stops accepting, drains admitted requests, writes the final
    // snapshot (truncating the WAL), joins the pool.
    server.shutdown();
    log::info("shutdown_complete", &[]);
}

#[cfg(not(unix))]
fn run(server: Server) {
    // No signal story on this platform: block for the process lifetime.
    server.wait();
}

fn parse(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got `{s}`");
        usage()
    })
}
