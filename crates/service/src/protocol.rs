//! Wire-level request/response types.
//!
//! One JSON object per line in each direction. Requests carry a
//! client-chosen `id` that the matching response echoes, so a client may
//! pipeline requests and correlate answers regardless of completion
//! order. Enum encoding follows the workspace serde convention: unit
//! variants are bare strings (`"Status"`), data variants are single-key
//! objects (`{"System": {...}}`).
//!
//! # Versioning
//!
//! [`PROTOCOL_VERSION`] is bumped on any breaking change to these types.
//! Clients discover the server's version via [`Op::Status`] —
//! [`ServerStatus::protocol_version`] — and unknown request shapes are
//! answered with [`Outcome::Error`], never a closed connection, so old
//! clients fail soft.

use serde::{Deserialize, Serialize};

use qcoral::{Estimate, Options, Report};
use qcoral_mc::{Dist, UsageProfile};

/// Version of the request/response schema (see module docs).
///
/// v2: `Options` gained the required `target_stderr`/`max_rounds`/
/// `round_budget` fields (iterative quantification) and `Stats` gained
/// `rounds`/`refine_samples`/`target_met` — v1 clients serializing the
/// old `Options` shape are rejected with a missing-field error.
///
/// v3: non-uniform usage profiles end to end. `Options` gained the
/// required `profile_epsilon` field (discretization bound; older
/// `Options` shapes are rejected with a missing-field error),
/// [`Op::System`]'s `profile` accepts the continuous `Dist` variants
/// (`Normal`/`Exponential`/`TruncatedNormal`), and [`Op::Program`]
/// gained an optional `profile` of [`NamedDist`] entries resolved
/// against the program's parameter names.
///
/// v4: fault tolerance and graceful degradation. `Stats` gained the
/// required `deadline_exceeded` flag (the breaking change: v3 clients
/// fail to decode v4 reports), `Options` gained the *optional*
/// `deadline_ms` request deadline (absent ⇒ no deadline, so v4 servers
/// still accept v3 request frames), and the new [`Op::Health`] op
/// answers with a [`HealthReport`] (store recovery, WAL and scheduler
/// fault counters). [`ServerStatus`] gained `requests_shed` and
/// `jobs_panicked`.
///
/// v5: observability. `Options` gained the required `trace` flag (the
/// breaking change: v4 request frames are rejected with a missing-field
/// error), `Report` gained the *optional* `trace` span list (absent on
/// untraced reports, so v4 responses without it still decode as far as
/// v4 clients are concerned), the new [`Op::Metrics`] op answers with a
/// [`MetricsReport`] (Prometheus-style text exposition of the server's
/// counters, gauges and histograms), and [`ServerStatus`] gained the
/// live `queue_depth` and `inflight` gauges next to the lifetime
/// totals.
///
/// v6: rare-event quantification. `Options` gained the required
/// `is_threshold` field (the escalation cutoff of the adaptive
/// importance-sampling engine; the breaking change: v5 request frames
/// are rejected with a missing-field error), the `allocation` enum
/// accepts the new `ImportanceAdaptive` variant, and `Stats` gained the
/// required `is_factors`/`is_fallbacks` counters (v5 clients fail to
/// decode v6 reports).
///
/// v7: the JIT backend. `Stats` gained the required `backend` field
/// (which predicate-evaluation backend served the analysis — `"jit"`,
/// `"bulk"` or `"scalar"`; the breaking change: v6 clients fail to
/// decode v7 reports) and [`ServerStatus`] gained `backend` (what this
/// server process would use, fixed at build/startup by the `jit`
/// feature and runtime CPU detection).
pub const PROTOCOL_VERSION: u32 = 7;

/// One named marginal of a program request's usage profile: programs
/// declare their inputs by name, so profiles address them by name too
/// (the server resolves names to positions after parsing).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NamedDist {
    /// Program parameter name.
    pub var: String,
    /// The marginal distribution over that parameter's interval.
    pub dist: Dist,
}

/// One quantification request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// The requested operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Quantify a MiniJ program end to end (symbolic execution →
    /// quantification → confidence), via `qcoral_repro::pipeline`.
    Program {
        /// MiniJ program source.
        source: String,
        /// Analyzer configuration.
        options: Options,
        /// Symbolic-execution depth bound (`None` ⇒ the default, 50).
        max_depth: Option<u64>,
        /// Usage profile as named marginals (`None`/empty ⇒ uniform);
        /// parameters not mentioned stay uniform.
        profile: Option<Vec<NamedDist>>,
    },
    /// Quantify a raw constraint system (`var …; pc …;` syntax, the
    /// analyzer's native input) under an optional usage profile
    /// (`None` ⇒ uniform).
    System {
        /// Constraint-system source for `parse_system`.
        source: String,
        /// Analyzer configuration.
        options: Options,
        /// Per-variable input distributions; uniform when absent.
        profile: Option<UsageProfile>,
    },
    /// Health/statistics probe; answered without entering the queue.
    Status,
    /// Fault-tolerance probe: store recovery outcome, WAL durability
    /// and scheduler fault counters ([`HealthReport`]). Like
    /// [`Op::Status`], answered inline so it works under full load.
    Health,
    /// Metrics scrape: the server's counters, gauges and histograms as
    /// Prometheus-style text exposition ([`MetricsReport`]). Like
    /// [`Op::Status`], answered inline so scrapes work under full load.
    Metrics,
}

/// One response line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 for frames that could not be
    /// parsed far enough to recover an id).
    pub id: u64,
    /// The result.
    pub outcome: Outcome,
}

/// The result of a request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Successful quantification.
    Report(AnalysisResponse),
    /// The request failed (parse error, overload, invalid input, or an
    /// internal panic). The connection stays open.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Answer to [`Op::Status`].
    Status(ServerStatus),
    /// Answer to [`Op::Health`].
    Health(HealthReport),
    /// Answer to [`Op::Metrics`].
    Metrics(MetricsReport),
}

/// A quantification answer: the full analyzer [`Report`] (estimate,
/// per-PC breakdown, per-request [`qcoral::Stats`] including cache and
/// factor-store counters, wall time), plus pipeline extras for
/// [`Op::Program`] requests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalysisResponse {
    /// The analyzer report for the target event.
    pub report: Report,
    /// Probability mass cut by the exploration bound (`Program` only).
    pub bound_mass: Option<Estimate>,
    /// `1 − bound_mass` confidence measure (`Program` only).
    pub confidence: Option<f64>,
    /// Complete paths explored (`Program` only).
    pub paths: Option<u64>,
    /// Paths cut by the bound (`Program` only).
    pub cut_paths: Option<u64>,
}

/// Server-side counters and configuration, for monitoring.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    /// Schema version of this protocol.
    pub protocol_version: u32,
    /// Worker threads executing requests.
    pub workers: u64,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_cap: u64,
    /// Micro-batch size limit per dispatch.
    pub max_batch: u64,
    /// Entries currently in the cross-run factor store.
    pub store_entries: u64,
    /// Factor-store entry capacity (LRU beyond it).
    pub store_capacity: u64,
    /// Cumulative factor-store hits since startup.
    pub store_hits: u64,
    /// Cumulative factor-store misses since startup.
    pub store_misses: u64,
    /// Requests executed to completion.
    pub requests_served: u64,
    /// Requests rejected at admission (queue full).
    pub requests_rejected: u64,
    /// Queued requests shed because their deadline passed before a
    /// worker picked them up (each was answered with a flagged partial
    /// report).
    pub requests_shed: u64,
    /// Jobs that panicked on a worker (contained; the pool survived).
    pub jobs_panicked: u64,
    /// Micro-batches dispatched to the worker pool.
    pub batches_dispatched: u64,
    /// Jobs currently waiting in the admission queue (live, not a
    /// lifetime total).
    pub queue_depth: u64,
    /// Jobs of the current micro-batch not yet finished (live).
    pub inflight: u64,
    /// Predicate-evaluation backend this server uses for tape-compiled
    /// predicates (`"jit"` or `"bulk"`; fixed per process by the `jit`
    /// build feature and runtime CPU detection).
    pub backend: String,
}

/// Answer to [`Op::Metrics`]: the server's metric families rendered as
/// Prometheus-style text exposition (`# HELP`/`# TYPE` plus value
/// lines; histograms as cumulative `_bucket{le="…"}` series). Carried
/// as text so scrapers and humans read the same bytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Schema version of this protocol.
    pub protocol_version: u32,
    /// The rendered exposition: the server's per-instance registry
    /// (scheduler, factor store, request timings) followed by the
    /// process-wide registry (analyzer, compile caches).
    pub text: String,
}

/// Answer to [`Op::Health`]: what startup recovery found on disk plus
/// the fault counters accumulated since.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Schema version of this protocol.
    pub protocol_version: u32,
    /// Persisted state (snapshot and/or WAL) survived into the warm
    /// store at startup. `false` for a fresh path or in-memory store.
    pub factor_store_recovered: bool,
    /// Full startup-recovery breakdown.
    pub recovery: crate::store::RecoveryReport,
    /// WAL append attempts that failed since startup (in-memory state
    /// stays correct; crash durability until the next snapshot suffers).
    pub wal_append_failures: u64,
    /// Entries currently in the cross-run factor store.
    pub store_entries: u64,
    /// Requests executed to completion.
    pub requests_served: u64,
    /// Requests rejected at admission (queue full).
    pub requests_rejected: u64,
    /// Queued requests shed after their deadline expired.
    pub requests_shed: u64,
    /// Jobs that panicked on a worker (contained).
    pub jobs_panicked: u64,
    /// Micro-batches dispatched.
    pub batches_dispatched: u64,
    /// Active fault-injection sites (empty unless the server was built
    /// with the `failpoints` feature and points were configured).
    pub failpoints: Vec<FailpointStatus>,
}

/// One fault-injection site's counters (see the `qcoral-failpoints`
/// crate); surfaced so chaos harnesses can assert injections actually
/// happened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailpointStatus {
    /// Failpoint name (e.g. `store.wal.append`).
    pub name: String,
    /// Times the site was evaluated.
    pub evaluations: u64,
    /// Evaluations that fired (injected a failure).
    pub fired: u64,
}
