//! Disk persistence for the cross-run [`FactorStore`].
//!
//! The snapshot is one versioned JSON document:
//!
//! ```json
//! {"version": 1, "entries": [ {"opts_fp": …, "fingerprint": …,
//!   "box_bits": […], "profile_bits": […],
//!   "mean_bits": …, "variance_bits": …}, … ]}
//! ```
//!
//! Estimates are stored as exact `f64` bits, so a snapshot round-trip is
//! observationally invisible: a warm restart answers recurring factors
//! with the bit-identical estimates the original process computed.
//!
//! Loading is fail-soft by construction: a missing file, unparseable
//! JSON, a mismatched [`SNAPSHOT_VERSION`], or malformed entries all
//! degrade to a (partially) cold cache — never an error, never a crash,
//! and never an invalid estimate (entry validation lives in
//! [`FactorStore::absorb`]). Saving writes a sibling `.tmp` file and
//! renames it into place, so a crash mid-save leaves the previous
//! snapshot intact.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use qcoral::{FactorStore, FactorStoreEntry};

/// Version of the snapshot document. Bumped on any change to the entry
/// schema; older snapshots are discarded (cold start) rather than
/// misinterpreted.
pub const SNAPSHOT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    entries: Vec<FactorStoreEntry>,
}

/// A [`FactorStore`] bound to an optional snapshot path.
pub struct PersistentStore {
    store: Arc<FactorStore>,
    path: Option<PathBuf>,
    /// Serializes snapshot writes: the save methods are called
    /// concurrently (per-batch hook, persist timer, shutdown), and both
    /// the dirty/debounce checks and the shared `.tmp`-then-rename pair
    /// must happen under one lock, or overlapping saves could interleave
    /// and rename a torn file into place.
    save_state: Mutex<SaveState>,
}

struct SaveState {
    saved_revision: u64,
    last_save: Option<Instant>,
}

impl PersistentStore {
    /// Opens the store, warm-loading `path` if it holds a valid snapshot
    /// (see module docs for the corrupt/stale behavior). `path: None`
    /// gives a purely in-memory store with the same interface.
    pub fn open(path: Option<PathBuf>, cap: usize) -> PersistentStore {
        let store = Arc::new(FactorStore::new(cap));
        if let Some(p) = &path {
            // A missing file is a quiet first run; anything else that
            // fails to load is reported and degrades to a cold start.
            if let Ok(text) = std::fs::read_to_string(p) {
                match serde_json::from_str::<Snapshot>(&text) {
                    Ok(snap) if snap.version == SNAPSHOT_VERSION => {
                        store.absorb(snap.entries);
                    }
                    Ok(snap) => eprintln!(
                        "qcoral-service: snapshot {} has version {} (want {SNAPSHOT_VERSION}); starting cold",
                        p.display(),
                        snap.version
                    ),
                    Err(e) => eprintln!(
                        "qcoral-service: snapshot {} is unreadable ({e}); starting cold",
                        p.display()
                    ),
                }
            }
        }
        PersistentStore {
            save_state: Mutex::new(SaveState {
                saved_revision: store.revision(),
                last_save: None,
            }),
            store,
            path,
        }
    }

    /// The in-memory store (attach to analyzers via
    /// `Analyzer::with_factor_store`).
    pub fn factor_store(&self) -> &Arc<FactorStore> {
        &self.store
    }

    /// The snapshot path, if persistence is enabled.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Saves a snapshot if the store changed since the last save.
    /// Returns whether a write happened. No-op without a path.
    pub fn save_if_dirty(&self) -> io::Result<bool> {
        if self.path.is_none() {
            return Ok(false);
        }
        let mut state = self.save_state.lock().expect("save state");
        self.save_locked(&mut state)
    }

    /// [`PersistentStore::save_if_dirty`], additionally skipping the
    /// write when one happened within `min_interval`. A full snapshot is
    /// O(store size); the per-batch hook uses this so a busy server near
    /// capacity is not dominated by rewriting a multi-megabyte document
    /// every batch. Dirtiness is not lost — a later batch (or the
    /// shutdown save, which does not debounce) picks it up.
    pub fn save_if_dirty_debounced(&self, min_interval: Duration) -> io::Result<bool> {
        if self.path.is_none() {
            return Ok(false);
        }
        let mut state = self.save_state.lock().expect("save state");
        if let Some(at) = state.last_save {
            if at.elapsed() < min_interval {
                return Ok(false);
            }
        }
        self.save_locked(&mut state)
    }

    /// Unconditionally writes the snapshot. No-op without a path.
    pub fn save(&self) -> io::Result<()> {
        if self.path.is_none() {
            return Ok(());
        }
        let mut state = self.save_state.lock().expect("save state");
        let rev = self.store.revision();
        self.write_snapshot()?;
        state.last_save = Some(Instant::now());
        state.saved_revision = rev;
        Ok(())
    }

    /// Dirty-checked save; the caller holds the save lock, so exactly one
    /// snapshot write is in flight at a time.
    fn save_locked(&self, state: &mut SaveState) -> io::Result<bool> {
        // Revision is read before the entries are snapshotted: inserts
        // racing the write may land in the file but not in
        // `saved_revision`, which at worst re-saves them next round.
        let rev = self.store.revision();
        if rev == state.saved_revision {
            return Ok(false);
        }
        self.write_snapshot()?;
        state.last_save = Some(Instant::now());
        state.saved_revision = rev;
        Ok(true)
    }

    /// The actual tmp-file + rename write. Callers must hold the save
    /// lock (see `save_state`).
    fn write_snapshot(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            entries: self.store.entries(),
        };
        let text = serde_json::to_string(&snap).expect("snapshot serializes");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}
