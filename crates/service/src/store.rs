//! Crash-safe disk persistence for the cross-run [`FactorStore`].
//!
//! Persistence is two cooperating artifacts:
//!
//! **Snapshot** (`<path>`): one versioned JSON document holding every
//! store entry, each wrapped with a per-entry checksum, plus a footer
//! checksum over the whole entry list:
//!
//! ```json
//! {"version": 2,
//!  "entries": [ {"entry": {"opts_fp": …, "fingerprint": …, "box_bits": […],
//!                "profile_bits": […], "mean_bits": …, "variance_bits": …},
//!               "crc": …}, … ],
//!  "footer_crc": …}
//! ```
//!
//! **Write-ahead log** (`<path>.wal`): one checksummed JSON line per
//! *fresh* factor insert, appended (and flushed) the moment the analyzer
//! deposits the estimate — long before the next snapshot. Each line is a
//! `{"entry": …, "crc": …}` object identical to a snapshot entry.
//!
//! Recovery on [`PersistentStore::open`] is fail-soft at every layer:
//!
//! 1. Load the snapshot. Entries whose checksum does not match are
//!    *skipped and counted* — one flipped bit costs one entry, not the
//!    whole cache. A footer mismatch is recorded but does not discard
//!    the per-entry survivors. A wrong version or unparseable document
//!    degrades to a cold snapshot (the WAL is still replayed).
//! 2. Replay the WAL line by line: valid lines are absorbed, corrupt
//!    complete lines are skipped and counted, and a torn tail (a final
//!    partial line from a crash mid-append) is truncated away so later
//!    appends start on a clean boundary.
//!
//! The outcome is summarized in a [`RecoveryReport`] surfaced through
//! serviced startup logs and the `health` protocol op.
//!
//! Estimates are stored as exact `f64` bits, so recovery is
//! observationally invisible: a warm restart answers recurring factors
//! with the bit-identical estimates the original process computed —
//! whether they came from the snapshot or from WAL replay.
//!
//! Saving writes a sibling `.tmp` file and renames it into place, then
//! truncates the WAL (its entries are now in the snapshot); a crash at
//! any point leaves either the old snapshot + full WAL or the new
//! snapshot + empty WAL loadable. The WAL lock is held across the whole
//! sequence so inserts racing a snapshot land in the post-truncation WAL
//! (replaying an entry the snapshot already holds is idempotent).

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use qcoral::{FactorStore, FactorStoreEntry};
use qcoral_failpoints::failpoint;
use qcoral_obs::{log, Histogram, Registry};

/// Version of the snapshot document. Bumped on any change to the entry
/// or checksum schema; older snapshots are discarded (cold start) rather
/// than misinterpreted. Version history:
///
/// - 1: plain entry list, no checksums, no WAL.
/// - 2: per-entry + footer checksums, sibling write-ahead log.
pub const SNAPSHOT_VERSION: u32 = 2;

#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    entries: Vec<SnapshotEntry>,
    footer_crc: u64,
}

/// One checksummed store entry — the unit of both the snapshot entry
/// list and the WAL (one JSON line each).
#[derive(Serialize, Deserialize)]
struct SnapshotEntry {
    entry: FactorStoreEntry,
    /// FNV-1a over the canonical JSON encoding of `entry`.
    crc: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Checksum of one entry: FNV-1a over its canonical JSON text. The serde
/// shim emits struct fields in declaration order, so the encoding is
/// deterministic.
fn entry_crc(entry: &FactorStoreEntry) -> u64 {
    let text = serde_json::to_string(entry).expect("entry serializes");
    fnv1a(FNV_OFFSET, text.as_bytes())
}

/// Footer checksum: FNV-1a over the entry count and every entry crc, so
/// a dropped/duplicated/reordered entry is detected even when each
/// surviving entry is individually intact.
fn footer_crc(entries: &[SnapshotEntry]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(entries.len() as u64).to_le_bytes());
    for e in entries {
        h = fnv1a(h, &e.crc.to_le_bytes());
    }
    h
}

/// The sibling write-ahead log path for a snapshot path: the snapshot
/// file name with `.wal` appended (`store.json` → `store.json.wal`).
pub fn wal_path(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.as_os_str().to_os_string();
    name.push(".wal");
    PathBuf::from(name)
}

/// Encodes one factor-store entry as a WAL line (no trailing newline).
/// Exposed so benches and tests can synthesize WAL files that recovery
/// accepts.
pub fn encode_wal_line(entry: &FactorStoreEntry) -> String {
    let wrapped = SnapshotEntry {
        crc: entry_crc(entry),
        entry: entry.clone(),
    };
    serde_json::to_string(&wrapped).expect("wal entry serializes")
}

/// What [`PersistentStore::open`] found on disk and how much of it
/// survived validation. All counters are zero / false for a fresh path
/// or an in-memory store.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot document of the current version was parsed.
    pub snapshot_loaded: bool,
    /// Entries absorbed from the snapshot.
    pub snapshot_entries: u64,
    /// Snapshot entries dropped for a checksum mismatch or failed
    /// estimate validation.
    pub snapshot_corrupt_entries: u64,
    /// The snapshot's footer checksum did not match its entry list
    /// (entries with valid per-entry checksums were still absorbed).
    pub footer_mismatch: bool,
    /// WAL lines absorbed on top of the snapshot.
    pub wal_replayed_entries: u64,
    /// Complete WAL lines dropped for a checksum/parse/validation
    /// failure.
    pub wal_corrupt_entries: u64,
    /// The WAL ended in a partial line (crash mid-append); the tail was
    /// truncated away.
    pub wal_torn_tail: bool,
}

impl RecoveryReport {
    /// `true` when any persisted state survived into the warm store.
    pub fn recovered(&self) -> bool {
        self.snapshot_entries > 0 || self.wal_replayed_entries > 0
    }

    /// `true` when recovery dropped something it found on disk.
    pub fn lossy(&self) -> bool {
        self.snapshot_corrupt_entries > 0 || self.wal_corrupt_entries > 0 || self.footer_mismatch
    }
}

/// A [`FactorStore`] bound to an optional snapshot path (plus its WAL).
pub struct PersistentStore {
    store: Arc<FactorStore>,
    path: Option<PathBuf>,
    /// Serializes snapshot writes: the save methods are called
    /// concurrently (per-batch hook, persist timer, shutdown), and both
    /// the dirty/debounce checks and the shared `.tmp`-then-rename pair
    /// must happen under one lock, or overlapping saves could interleave
    /// and rename a torn file into place.
    save_state: Mutex<SaveState>,
    /// Shared with the store's insert hook; see [`WalState`].
    wal: Arc<Mutex<WalState>>,
    recovery: RecoveryReport,
    /// Wall time of each snapshot write (tmp write + rename + WAL
    /// truncation), microseconds. Per-instance; the server registers it
    /// via [`PersistentStore::register_metrics`].
    save_duration_us: Arc<Histogram>,
}

struct SaveState {
    saved_revision: u64,
    last_save: Option<Instant>,
}

/// WAL writer state, shared between the [`PersistentStore`] (which
/// truncates after snapshots) and the factor store's insert hook (which
/// appends). The mutex doubles as the snapshot/append ordering fence:
/// `write_snapshot` holds it across entries() + write + rename +
/// truncate, so an insert either lands in the snapshotted entry set or
/// appends to the freshly truncated WAL — never falls between.
struct WalState {
    path: Option<PathBuf>,
}

/// Cumulative count of WAL append attempts that failed with an I/O
/// error (including injected ones). The entry is still safe in memory
/// and reaches disk with the next snapshot; the counter surfaces the
/// reduced crash-durability window through `health`.
static WAL_APPEND_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Cumulative WAL append failures across all stores in this process
/// (see [`PersistentStore::wal_append_failures`]).
pub fn wal_append_failures() -> u64 {
    WAL_APPEND_FAILURES.load(Ordering::Relaxed)
}

fn append_wal_line(path: &Path, line: &str) -> io::Result<()> {
    if failpoint!("store.wal.append") {
        return Err(io::Error::other("injected wal append failure"));
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    // One write() call per line: the OS page cache preserves it across a
    // process kill, and a machine crash can only tear the final line —
    // which recovery truncates.
    file.write_all(&buf)
}

impl PersistentStore {
    /// Opens the store, recovering `path` (snapshot, then WAL replay) if
    /// it holds prior state — see the module docs for the fail-soft
    /// semantics. `path: None` gives a purely in-memory store with the
    /// same interface.
    pub fn open(path: Option<PathBuf>, cap: usize) -> PersistentStore {
        let store = Arc::new(FactorStore::new(cap));
        let mut recovery = RecoveryReport::default();
        if let Some(p) = &path {
            recovery = recover(&store, p);
        }
        let wal = Arc::new(Mutex::new(WalState {
            path: path.as_deref().map(wal_path),
        }));
        if path.is_some() {
            // From here on, every fresh analyzer insert is logged before
            // the next snapshot can capture it. `absorb` (used by
            // recovery above and by future snapshot loads) bypasses the
            // hook, so replayed entries are not re-appended.
            let wal_hook = Arc::clone(&wal);
            store.set_insert_hook(Some(Box::new(move |entry: &FactorStoreEntry| {
                let line = encode_wal_line(entry);
                let state = wal_hook.lock().expect("wal state");
                if let Some(p) = &state.path {
                    if append_wal_line(p, &line).is_err() {
                        WAL_APPEND_FAILURES.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })));
        }
        PersistentStore {
            save_state: Mutex::new(SaveState {
                saved_revision: store.revision(),
                last_save: None,
            }),
            store,
            path,
            wal,
            recovery,
            save_duration_us: Histogram::new(),
        }
    }

    /// Registers this store's persistence metrics
    /// (`qcoral_store_save_duration_us`) into `registry`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_histogram(
            "qcoral_store_save_duration_us",
            "Factor-store snapshot write time (tmp write + rename + WAL truncation), microseconds.",
            Arc::clone(&self.save_duration_us),
        );
    }

    /// The in-memory store (attach to analyzers via
    /// `Analyzer::with_factor_store`).
    pub fn factor_store(&self) -> &Arc<FactorStore> {
        &self.store
    }

    /// The snapshot path, if persistence is enabled.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What [`PersistentStore::open`] recovered from disk.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Cumulative WAL append failures in this process (in-memory state
    /// stays correct; crash durability until the next snapshot is what
    /// suffers).
    pub fn wal_append_failures(&self) -> u64 {
        wal_append_failures()
    }

    /// Saves a snapshot if the store changed since the last save.
    /// Returns whether a write happened. No-op without a path.
    pub fn save_if_dirty(&self) -> io::Result<bool> {
        if self.path.is_none() {
            return Ok(false);
        }
        let mut state = self.save_state.lock().expect("save state");
        self.save_locked(&mut state)
    }

    /// [`PersistentStore::save_if_dirty`], additionally skipping the
    /// write when one happened within `min_interval`. A full snapshot is
    /// O(store size); the per-batch hook uses this so a busy server near
    /// capacity is not dominated by rewriting a multi-megabyte document
    /// every batch. Dirtiness is not lost — a later batch (or the
    /// shutdown save, which does not debounce) picks it up, and every
    /// insert is already WAL-durable regardless.
    pub fn save_if_dirty_debounced(&self, min_interval: Duration) -> io::Result<bool> {
        if self.path.is_none() {
            return Ok(false);
        }
        let mut state = self.save_state.lock().expect("save state");
        if let Some(at) = state.last_save {
            if at.elapsed() < min_interval {
                return Ok(false);
            }
        }
        self.save_locked(&mut state)
    }

    /// Unconditionally writes the snapshot. No-op without a path.
    pub fn save(&self) -> io::Result<()> {
        if self.path.is_none() {
            return Ok(());
        }
        let mut state = self.save_state.lock().expect("save state");
        let rev = self.store.revision();
        self.write_snapshot()?;
        state.last_save = Some(Instant::now());
        state.saved_revision = rev;
        Ok(())
    }

    /// Dirty-checked save; the caller holds the save lock, so exactly one
    /// snapshot write is in flight at a time.
    fn save_locked(&self, state: &mut SaveState) -> io::Result<bool> {
        // Revision is read before the entries are snapshotted: inserts
        // racing the write may land in the file but not in
        // `saved_revision`, which at worst re-saves them next round.
        let rev = self.store.revision();
        if rev == state.saved_revision {
            return Ok(false);
        }
        self.write_snapshot()?;
        state.last_save = Some(Instant::now());
        state.saved_revision = rev;
        Ok(true)
    }

    /// The actual tmp-file + rename write, followed by WAL truncation.
    /// Callers must hold the save lock (see `save_state`); the WAL lock
    /// is taken here for the duration so no insert can slip between "in
    /// the snapshotted entry set" and "in the WAL".
    fn write_snapshot(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let t0 = Instant::now();
        let wal = self.wal.lock().expect("wal state");
        let entries: Vec<SnapshotEntry> = self
            .store
            .entries()
            .into_iter()
            .map(|entry| SnapshotEntry {
                crc: entry_crc(&entry),
                entry,
            })
            .collect();
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            footer_crc: footer_crc(&entries),
            entries,
        };
        let text = serde_json::to_string(&snap).expect("snapshot serializes");
        let tmp = path.with_extension("tmp");
        if failpoint!("store.snapshot.write") {
            return Err(io::Error::other("injected snapshot write failure"));
        }
        std::fs::write(&tmp, text)?;
        if failpoint!("store.snapshot.rename") {
            return Err(io::Error::other("injected snapshot rename failure"));
        }
        std::fs::rename(&tmp, path)?;
        // The snapshot now covers everything the WAL held; clear it so
        // replay work and file size stay proportional to the window
        // since the last snapshot. Failure to truncate is harmless
        // (replay is idempotent) so the error is not propagated as a
        // failed save.
        if let Some(wal_p) = &wal.path {
            let _ = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(wal_p);
        }
        self.save_duration_us
            .record(t0.elapsed().as_micros() as u64);
        Ok(())
    }
}

/// Loads snapshot + WAL into `store`, truncating a torn WAL tail.
fn recover(store: &FactorStore, path: &Path) -> RecoveryReport {
    let mut report = RecoveryReport::default();

    // Phase 1: snapshot. A missing file is a quiet first run; anything
    // else that fails wholesale is reported and degrades to a cold
    // snapshot, with the WAL still replayed on top.
    if let Ok(text) = std::fs::read_to_string(path) {
        match serde_json::from_str::<Snapshot>(&text) {
            Ok(snap) if snap.version == SNAPSHOT_VERSION => {
                report.snapshot_loaded = true;
                report.footer_mismatch = footer_crc(&snap.entries) != snap.footer_crc;
                let total = snap.entries.len() as u64;
                let valid = snap
                    .entries
                    .into_iter()
                    .filter(|se| entry_crc(&se.entry) == se.crc)
                    .map(|se| se.entry);
                report.snapshot_entries = store.absorb(valid) as u64;
                report.snapshot_corrupt_entries = total - report.snapshot_entries;
            }
            Ok(snap) => log::warn(
                "snapshot_version_mismatch",
                &[
                    ("path", path.display().to_string()),
                    ("found", snap.version.to_string()),
                    ("want", SNAPSHOT_VERSION.to_string()),
                    ("action", "starting cold".to_string()),
                ],
            ),
            Err(e) => log::warn(
                "snapshot_unreadable",
                &[
                    ("path", path.display().to_string()),
                    ("error", e.to_string()),
                    ("action", "starting cold".to_string()),
                ],
            ),
        }
    }

    // Phase 2: WAL replay. Only a crash between an insert and the next
    // snapshot leaves lines here; each is validated independently.
    let wal_p = wal_path(path);
    if let Ok(bytes) = std::fs::read(&wal_p) {
        // A torn tail is everything after the final newline: an append
        // is a single write() of `line + '\n'`, so only the last record
        // can be partial and completeness is exactly newline-termination.
        let complete_len = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(pos) => pos + 1,
            None => 0,
        };
        if complete_len < bytes.len() {
            report.wal_torn_tail = true;
            let _ = OpenOptions::new()
                .write(true)
                .open(&wal_p)
                .and_then(|f| f.set_len(complete_len as u64));
        }
        for line in bytes[..complete_len].split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            let parsed = std::str::from_utf8(line)
                .ok()
                .and_then(|s| serde_json::from_str::<SnapshotEntry>(s).ok())
                .filter(|se| entry_crc(&se.entry) == se.crc);
            let absorbed = parsed.is_some_and(|se| store.absorb([se.entry]) == 1);
            if absorbed {
                report.wal_replayed_entries += 1;
            } else {
                report.wal_corrupt_entries += 1;
            }
        }
    }
    report
}
