//! The TCP server: accept loop, per-connection readers, request
//! execution on the shared worker pool.
//!
//! Every connection gets a reader thread that decodes JSON-lines frames
//! and submits jobs to the [`Scheduler`]. Workers execute requests
//! against analyzers wired to the server's shared [`PavingCache`] and
//! persistent [`FactorStore`] — so every recurring factor across all
//! clients, connections and (via the snapshot) restarts is answered from
//! the cross-run cache, bit-identically to a fresh computation.
//!
//! [`Op::Status`] is answered inline on the reader thread: health probes
//! must work *especially* when the queue is full.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcoral::{Analyzer, Deadline, Estimate, FactorStore, Report, Stats, Trace, DEFAULT_STORE_CAP};
use qcoral_constraints::parse::parse_system;
use qcoral_failpoints::failpoint;
use qcoral_icp::{domain_box, PavingCache};
use qcoral_mc::UsageProfile;
use qcoral_obs::{log, Histogram, Registry};
use qcoral_repro::pipeline::{analyze_program_with_profile, PipelineError};
use qcoral_symexec::SymConfig;

use crate::protocol::{
    AnalysisResponse, FailpointStatus, HealthReport, MetricsReport, Op, Outcome, Response,
    ServerStatus, PROTOCOL_VERSION,
};
use crate::scheduler::Scheduler;
use crate::store::PersistentStore;
use crate::wire::{decode_request, encode_response, read_frame, salvage_id, FrameRead};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads. Defaults to `min(4, available cores)`.
    pub workers: usize,
    /// Admission-queue capacity; beyond it requests are rejected with an
    /// "overloaded" error.
    pub queue_cap: usize,
    /// Micro-batch size limit (snapshot writes amortize per batch).
    pub max_batch: usize,
    /// Factor-store entry capacity (LRU eviction beyond it).
    pub store_cap: usize,
    /// Snapshot path for the cross-run factor store; `None` disables
    /// persistence.
    pub snapshot: Option<PathBuf>,
    /// Per-request sample-budget ceiling: requests asking for more are
    /// rejected with an error instead of pinning a worker indefinitely.
    pub max_samples: u64,
    /// Per-request symbolic-execution depth ceiling (same rationale).
    pub max_depth_cap: u64,
    /// Per-request path-condition ceiling: bounds how many factors (and
    /// thus pavings, each up to the paver time budget) one frame can
    /// demand. Also caps symbolic-execution path exploration. Operators
    /// facing untrusted clients should lower this together with the
    /// paver budget — worst-case request cost scales with their product.
    pub max_pcs: usize,
    /// Concurrent-connection ceiling: beyond it new connections get an
    /// error line and are closed (each connection owns a reader thread).
    pub max_connections: usize,
    /// Idle-connection timeout: a connection with no traffic for this
    /// long is closed, so silent sockets cannot pin reader threads.
    pub idle_timeout: Duration,
    /// Per-write timeout for responses. Workers write answers on the
    /// request's connection; a client that stops draining its socket
    /// would otherwise block a worker forever once the TCP send buffer
    /// fills — and, through the scheduler's batch barrier, stall the
    /// whole pool. A write that exceeds this timeout marks the
    /// connection dead (it is shut down and the response dropped).
    pub write_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cores.min(4),
            queue_cap: 256,
            max_batch: 8,
            store_cap: DEFAULT_STORE_CAP,
            snapshot: None,
            max_samples: 10_000_000,
            max_depth_cap: 1_000,
            // Matches SymConfig::default().max_paths, so service answers
            // for default-configured programs stay identical to direct
            // pipeline calls.
            max_pcs: 100_000,
            max_connections: 1_024,
            idle_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
        }
    }
}

struct ServerShared {
    store: Arc<PersistentStore>,
    paving_cache: Arc<PavingCache>,
    scheduler: Scheduler,
    cfg: ServiceConfig,
    connections: std::sync::atomic::AtomicUsize,
    /// Per-instance metric registry: the scheduler's and factor store's
    /// own counters are registered here (never global, so per-instance
    /// tests and multi-server processes stay exact), plus request
    /// timings. `Op::Metrics` renders this followed by the process-wide
    /// [`Registry::global`] (analyzer totals, compile caches).
    registry: Registry,
    request_duration_us: Arc<Histogram>,
}

/// Decrements the live-connection count when a reader thread exits,
/// however it exits.
struct ConnectionGuard<'a>(&'a ServerShared);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::Release);
    }
}

/// A running server. Obtain with [`Server::start`]; stop with
/// [`Server::shutdown`] (tests) or block forever with [`Server::wait`]
/// (the `qcoral-serviced` binary).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    persist_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, warm-loads the snapshot (if any), starts the worker pool
    /// and the accept loop, and returns immediately.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let store = Arc::new(PersistentStore::open(cfg.snapshot.clone(), cfg.store_cap));

        // The after-batch hook persists the store once per micro-batch,
        // debounced: a full snapshot is O(store size), so a busy server
        // writes at most a couple per second and relies on the
        // undebounced shutdown save for the final state.
        let persist = Arc::clone(&store);
        let scheduler = Scheduler::start(cfg.workers, cfg.queue_cap, cfg.max_batch, move |_n| {
            if let Err(e) = persist.save_if_dirty_debounced(Duration::from_millis(500)) {
                log::warn("snapshot_save_failed", &[("error", e.to_string())]);
            }
        });

        // Per-instance registry: the scheduler and factor store own their
        // counters; the server registers those handles here so `Op::Metrics`
        // can render them without minting process-global state.
        let registry = Registry::new();
        let request_duration_us = registry.histogram(
            "qcoral_request_duration_us",
            "End-to-end request execution time on a worker (microseconds).",
        );
        scheduler.register_metrics(&registry);
        store.factor_store().register_metrics(&registry);
        store.register_metrics(&registry);

        let shared = Arc::new(ServerShared {
            store,
            paving_cache: Arc::new(PavingCache::new()),
            scheduler,
            cfg,
            connections: std::sync::atomic::AtomicUsize::new(0),
            registry,
            request_duration_us,
        });
        let stop = Arc::new(AtomicBool::new(false));

        // Periodic persistence, independent of batches: the daemon is
        // normally stopped by a signal (never reaching the graceful
        // shutdown save), and an idle server would otherwise hold its
        // last debounce window in memory only. With the timer, a killed
        // process loses at most ~2 s of new factor estimates.
        let persist_thread = shared.cfg.snapshot.is_some().then(|| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("qcoral-persist".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(250));
                        if let Err(e) = shared.store.save_if_dirty_debounced(Duration::from_secs(2))
                        {
                            log::warn("periodic_snapshot_save_failed", &[("error", e.to_string())]);
                        }
                    }
                })
                .expect("spawn persist timer")
        });

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("qcoral-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match conn {
                            Ok(mut stream) => {
                                // Connection ceiling: each connection owns
                                // a reader thread, so refuse (with an
                                // error line) rather than spawn without
                                // bound.
                                let live = shared.connections.fetch_add(1, Ordering::AcqRel);
                                if live >= shared.cfg.max_connections {
                                    shared.connections.fetch_sub(1, Ordering::Release);
                                    let refusal = encode_response(&Response {
                                        id: 0,
                                        outcome: Outcome::Error {
                                            message: format!(
                                                "server at its connection limit of {}",
                                                shared.cfg.max_connections
                                            ),
                                        },
                                    });
                                    let _ = stream.write_all(refusal.as_bytes());
                                    continue;
                                }
                                let conn_shared = Arc::clone(&shared);
                                // Reader threads exit on client EOF or the
                                // idle timeout; they are not joined on
                                // shutdown (blocking reads have no
                                // portable cancellation), which only
                                // delays process exit if a client holds a
                                // connection open.
                                let spawned = std::thread::Builder::new()
                                    .name("qcoral-conn".to_string())
                                    .spawn(move || {
                                        let _guard = ConnectionGuard(&conn_shared);
                                        serve_connection(&conn_shared, stream)
                                    });
                                if spawned.is_err() {
                                    // The guard never ran.
                                    shared.connections.fetch_sub(1, Ordering::Release);
                                }
                            }
                            Err(e) => {
                                if !stop.load(Ordering::Acquire) {
                                    log::warn("accept_failed", &[("error", e.to_string())]);
                                }
                            }
                        }
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Server {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
            persist_thread,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's persistent factor store.
    pub fn factor_store(&self) -> &Arc<FactorStore> {
        self.shared.store.factor_store()
    }

    /// What startup recovery found on disk (see
    /// [`crate::store::RecoveryReport`]); the daemon logs this at boot.
    pub fn recovery_report(&self) -> &crate::store::RecoveryReport {
        self.shared.store.recovery_report()
    }

    /// The server's metric families as Prometheus-style text exposition:
    /// the per-instance registry (scheduler, factor store, request
    /// timings) followed by the process-wide registry (analyzer totals,
    /// compile caches). Same bytes [`Op::Metrics`] answers with; the
    /// daemon logs a digest of this periodically.
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.shared)
    }

    /// Blocks this thread for the lifetime of the process (the server
    /// binary's main thread has nothing else to do).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting, drains admitted requests, persists a final
    /// snapshot, and joins the pool.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Take the scheduler down (drains admitted jobs), then write the
        // final snapshot.
        self.shared.scheduler.shutdown();
        if let Some(t) = self.persist_thread.take() {
            let _ = t.join();
        }
        if let Err(e) = self.shared.store.save_if_dirty() {
            log::error("final_snapshot_save_failed", &[("error", e.to_string())]);
        }
    }
}

fn serve_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    // Idle sockets must not pin reader threads forever; a timed-out read
    // errors below and the connection closes. The write timeout bounds
    // how long a worker can block on a client that stops reading (both
    // timeouts are socket options, shared with the clone below).
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => {
            log::warn("connection_setup_failed", &[("error", e.to_string())]);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bounded read: reject a frame that exceeds the cap without
        // buffering it whole.
        match read_frame(&mut reader, &mut line) {
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Frame(_)) => {}
            // The line was consumed whole, so the stream is still
            // framed: answer with an error and keep the connection.
            Ok(FrameRead::NotUtf8) => {
                write_response(
                    &writer,
                    &Response {
                        id: 0,
                        outcome: Outcome::Error {
                            message: "frame is not valid UTF-8".to_string(),
                        },
                    },
                );
                continue;
            }
            // Oversized frame (stream no longer framed) or transport
            // error: drop the connection.
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue; // blank keep-alive lines are ignored
        }
        let request = match decode_request(&line) {
            Ok(r) => r,
            Err(e) => {
                write_response(
                    &writer,
                    &Response {
                        id: salvage_id(&line),
                        outcome: Outcome::Error {
                            message: e.to_string(),
                        },
                    },
                );
                continue;
            }
        };
        // Status and Health are answered inline: probes must work
        // *especially* when the queue is full.
        if request.op == Op::Status {
            write_response(
                &writer,
                &Response {
                    id: request.id,
                    outcome: Outcome::Status(status(shared)),
                },
            );
            continue;
        }
        if request.op == Op::Health {
            write_response(
                &writer,
                &Response {
                    id: request.id,
                    outcome: Outcome::Health(health(shared)),
                },
            );
            continue;
        }
        if request.op == Op::Metrics {
            write_response(
                &writer,
                &Response {
                    id: request.id,
                    outcome: Outcome::Metrics(metrics_report(shared)),
                },
            );
            continue;
        }
        // The deadline is anchored at arrival, not at job start: queue
        // wait counts against the budget, and a job whose deadline
        // expires while still queued is shed by the dispatcher —
        // answered below with a flagged partial report instead of
        // pinning a worker on already-stale work.
        let deadline_ms = match &request.op {
            Op::System { options, .. } | Op::Program { options, .. } => options.deadline_ms,
            _ => None,
        };
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        // Tracing opt-in: the trace is created here at decode time so the
        // queue wait (arrival → job start) lands on it as a span — queue
        // time is part of what the client experiences, and Status's
        // lifetime histograms can't attribute it to one request.
        let trace = match &request.op {
            Op::System { options, .. } | Op::Program { options, .. } if options.trace => {
                Some(Trace::new())
            }
            _ => None,
        };
        let trace_t0 = qcoral_obs::trace::span_start(&trace);
        let job_shared = Arc::clone(shared);
        let job_writer = Arc::clone(&writer);
        let id = request.id;
        let on_shed = deadline.map(|_| -> crate::scheduler::Job {
            let shed_writer = Arc::clone(&writer);
            Box::new(move || {
                write_response(
                    &shed_writer,
                    &Response {
                        id,
                        outcome: deadline_exceeded_report(),
                    },
                );
            })
        });
        let submitted = shared.scheduler.submit_with(
            Box::new(move || {
                if let Some(t) = &trace {
                    t.record("queue_wait", "service", trace_t0, Vec::new());
                }
                let started = Instant::now();
                let outcome = execute(&job_shared, request.op, deadline, trace);
                job_shared
                    .request_duration_us
                    .record(started.elapsed().as_micros() as u64);
                write_response(&job_writer, &Response { id, outcome });
            }),
            deadline,
            on_shed,
        );
        if submitted.is_err() {
            write_response(
                &writer,
                &Response {
                    id,
                    outcome: Outcome::Error {
                        message: format!(
                            "server overloaded: admission queue of {} is full",
                            shared.cfg.queue_cap
                        ),
                    },
                },
            );
        }
    }
}

fn write_response(writer: &Arc<Mutex<TcpStream>>, response: &Response) {
    let frame = encode_response(response);
    let mut w = writer.lock().expect("writer lock");
    if failpoint!("wire.write") {
        // Injected transport failure: drop the response and sever the
        // connection, as a mid-write network fault would. The client's
        // retry policy is what recovers from this.
        let _ = w.shutdown(Shutdown::Both);
        return;
    }
    if w.write_all(frame.as_bytes())
        .and_then(|()| w.flush())
        .is_err()
    {
        // A failed (or timed-out — see ServiceConfig::write_timeout)
        // write means the client is gone or not reading; a partial write
        // also desyncs the frame stream. Shut the socket down so the
        // reader thread exits and later writes on this connection fail
        // immediately instead of each blocking a worker for the timeout.
        let _ = w.shutdown(Shutdown::Both);
    }
}

fn status(shared: &ServerShared) -> ServerStatus {
    let store = shared.store.factor_store();
    let (hits, misses) = store.stats();
    let m = shared.scheduler.metrics();
    ServerStatus {
        protocol_version: PROTOCOL_VERSION,
        workers: shared.cfg.workers as u64,
        queue_cap: shared.cfg.queue_cap as u64,
        max_batch: shared.cfg.max_batch as u64,
        store_entries: store.len() as u64,
        store_capacity: store.capacity() as u64,
        store_hits: hits,
        store_misses: misses,
        requests_served: m.served,
        requests_rejected: m.rejected,
        requests_shed: m.shed,
        jobs_panicked: m.panicked,
        batches_dispatched: m.batches,
        queue_depth: shared.scheduler.queue_depth(),
        inflight: shared.scheduler.inflight(),
        backend: qcoral::active_backend().to_string(),
    }
}

/// Renders both registries: per-instance first (scheduler, factor
/// store, request timings), then process-wide (analyzer totals, compile
/// caches). Family names are disjoint by construction, so plain
/// concatenation is a valid exposition.
fn metrics_text(shared: &ServerShared) -> String {
    let mut text = shared.registry.render();
    text.push_str(&Registry::global().render());
    text
}

fn metrics_report(shared: &ServerShared) -> MetricsReport {
    MetricsReport {
        protocol_version: PROTOCOL_VERSION,
        text: metrics_text(shared),
    }
}

fn health(shared: &ServerShared) -> HealthReport {
    let recovery = shared.store.recovery_report().clone();
    let m = shared.scheduler.metrics();
    HealthReport {
        protocol_version: PROTOCOL_VERSION,
        factor_store_recovered: recovery.recovered(),
        recovery,
        wal_append_failures: shared.store.wal_append_failures(),
        store_entries: shared.store.factor_store().len() as u64,
        requests_served: m.served,
        requests_rejected: m.rejected,
        requests_shed: m.shed,
        jobs_panicked: m.panicked,
        batches_dispatched: m.batches,
        failpoints: qcoral_failpoints::stats()
            .into_iter()
            .map(|s| FailpointStatus {
                name: s.name,
                evaluations: s.evaluations,
                fired: s.fired,
            })
            .collect(),
    }
}

/// The graceful-degradation answer for a request whose deadline passed
/// while it was still queued: a well-formed, explicitly *partial* report
/// (zero estimate, `deadline_exceeded` flagged) rather than an error —
/// the same shape a worker returns when the deadline expires mid-
/// analysis, just with zero progress.
fn deadline_exceeded_report() -> Outcome {
    Outcome::Report(AnalysisResponse {
        report: Report {
            estimate: Estimate::ZERO,
            per_pc: Vec::new(),
            stats: Stats {
                deadline_exceeded: true,
                ..Stats::default()
            },
            wall: Duration::ZERO,
            trace: None,
        },
        bound_mass: None,
        confidence: None,
        paths: None,
        cut_paths: None,
    })
}

/// Executes one analysis request. Panics (e.g. analyzer input asserts
/// not caught by validation) become error outcomes; the worker survives.
fn execute(
    shared: &ServerShared,
    op: Op,
    deadline: Option<Instant>,
    trace: Option<Arc<Trace>>,
) -> Outcome {
    let run = AssertUnwindSafe(|| execute_inner(shared, op, deadline, trace));
    match catch_unwind(run) {
        Ok(outcome) => outcome,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic");
            Outcome::Error {
                message: format!("internal error: {msg}"),
            }
        }
    }
}

/// Validates network-supplied analyzer options against the server's
/// resource ceilings. Four hostile frames must not be able to pin every
/// worker forever.
fn validate(
    shared: &ServerShared,
    options: &qcoral::Options,
    max_depth: Option<u64>,
) -> Option<Outcome> {
    let reject = |message: String| Some(Outcome::Error { message });
    if options.samples == 0 {
        return reject("options.samples must be at least 1".to_string());
    }
    if options.samples > shared.cfg.max_samples {
        return reject(format!(
            "options.samples {} exceeds this server's limit of {}",
            options.samples, shared.cfg.max_samples
        ));
    }
    if let Some(target) = options.target_stderr {
        // Iterative requests: the target itself must be sane, and the
        // worst-case spend (initial budget plus every refinement round)
        // must respect the same per-request sample ceiling, or a single
        // frame with a huge round plan could pin a worker far past
        // `max_samples`.
        if !target.is_finite() || target < 0.0 {
            return reject(format!(
                "options.target_stderr must be a finite non-negative number, got {target}"
            ));
        }
        let worst_case = options.samples.saturating_add(
            options
                .max_rounds
                .max(1)
                .saturating_sub(1)
                .saturating_mul(options.round_budget),
        );
        if worst_case > shared.cfg.max_samples {
            return reject(format!(
                "iterative worst case of {} samples (samples + (max_rounds - 1) × round_budget) \
                 exceeds this server's limit of {}",
                worst_case, shared.cfg.max_samples
            ));
        }
    }
    if options.paver.time_budget > Duration::from_secs(60) {
        return reject("options.paver.time_budget exceeds the 60 s limit".to_string());
    }
    if let Some(d) = max_depth {
        if d > shared.cfg.max_depth_cap {
            return reject(format!(
                "max_depth {d} exceeds this server's limit of {}",
                shared.cfg.max_depth_cap
            ));
        }
    }
    None
}

fn execute_inner(
    shared: &ServerShared,
    op: Op,
    deadline: Option<Instant>,
    trace: Option<Arc<Trace>>,
) -> Outcome {
    match op {
        Op::Status => Outcome::Status(status(shared)),
        Op::Health => Outcome::Health(health(shared)),
        Op::Metrics => Outcome::Metrics(metrics_report(shared)),
        Op::System {
            source,
            options,
            profile,
        } => {
            if let Some(rejection) = validate(shared, &options, None) {
                return rejection;
            }
            let sys = match parse_system(&source) {
                Ok(sys) => sys,
                Err(e) => {
                    return Outcome::Error {
                        message: format!("system parse error: {e}"),
                    }
                }
            };
            if sys.constraint_set.pcs().len() > shared.cfg.max_pcs {
                return Outcome::Error {
                    message: format!(
                        "system declares {} path conditions, over this server's limit of {}",
                        sys.constraint_set.pcs().len(),
                        shared.cfg.max_pcs
                    ),
                };
            }
            let profile = profile.unwrap_or_else(|| UsageProfile::uniform(sys.domain.len()));
            if profile.len() != sys.domain.len() {
                return Outcome::Error {
                    message: format!(
                        "profile covers {} variables but the domain declares {}",
                        profile.len(),
                        sys.domain.len()
                    ),
                };
            }
            // Re-validate/normalize: a deserialized profile bypassed the
            // Dist::piecewise constructor and its invariants, and only
            // here is the input domain known (a truncation disjoint from
            // it must be an error, not an exact-looking probability 0).
            let profile = match validated_profile(&profile, &sys.domain) {
                Ok(p) => p,
                Err(message) => return Outcome::Error { message },
            };
            // A request carrying a target standard error runs the
            // iterative, variance-driven engine; its refined factor
            // estimates land in (and warm-load from) the same store.
            let a = analyzer(shared, options, deadline, trace);
            let report = if a.options().target_stderr.is_some() {
                a.analyze_iterative(&sys.constraint_set, &sys.domain, &profile)
            } else {
                a.analyze(&sys.constraint_set, &sys.domain, &profile)
            };
            Outcome::Report(AnalysisResponse {
                report,
                bound_mass: None,
                confidence: None,
                paths: None,
                cut_paths: None,
            })
        }
        Op::Program {
            source,
            options,
            max_depth,
            profile,
        } => {
            if let Some(rejection) = validate(shared, &options, max_depth) {
                return rejection;
            }
            let defaults = SymConfig::default();
            let sym_cfg = SymConfig {
                max_depth: max_depth.map(|d| d as usize).unwrap_or(defaults.max_depth),
                // Bounds the explored path count (and thus pavings) per
                // request; with the default config this equals the
                // pipeline default, keeping answers identical to direct
                // calls.
                max_paths: defaults.max_paths.min(shared.cfg.max_pcs),
                ..defaults
            };
            // Named marginals; resolution against parameter names (and
            // distribution re-validation) happens inside the pipeline,
            // after parsing.
            let named: Vec<(String, qcoral_mc::Dist)> = profile
                .unwrap_or_default()
                .into_iter()
                .map(|nd| (nd.var, nd.dist))
                .collect();
            match analyze_program_with_profile(
                &analyzer(shared, options, deadline, trace),
                &source,
                &sym_cfg,
                &named,
            ) {
                Ok(analysis) => Outcome::Report(AnalysisResponse {
                    confidence: Some(analysis.confidence()),
                    bound_mass: Some(analysis.bound_mass),
                    paths: Some(analysis.paths as u64),
                    cut_paths: Some(analysis.cut_paths as u64),
                    report: analysis.target,
                }),
                Err(e @ PipelineError::Parse(_)) => Outcome::Error {
                    message: format!("program parse error: {e}"),
                },
                Err(e @ PipelineError::Profile(_)) => Outcome::Error {
                    message: e.to_string(),
                },
            }
        }
    }
}

/// Re-validates a network-supplied usage profile against the parsed
/// domain and rebuilds it through the checked [`qcoral_mc::Dist`]
/// constructors so its invariants (strictly increasing finite edges,
/// normalized non-negative weights, positive scale parameters,
/// domain-overlapping truncations) hold again — deserialization
/// constructs enum variants directly and bypasses them, which would
/// otherwise mean silently unnormalized probabilities or an
/// out-of-bounds panic in `Dist::mass`.
fn validated_profile(
    profile: &UsageProfile,
    domain: &qcoral_constraints::Domain,
) -> Result<UsageProfile, String> {
    profile
        .validated_in(&domain_box(domain))
        .map_err(|(i, e)| format!("profile variable {i}: {e}"))
}

/// Builds a per-request analyzer wired to the server's shared caches.
/// The deadline (if any) is the arrival-anchored instant computed at
/// decode time — it takes precedence over `options.deadline_ms`, which
/// would otherwise restart the clock when the job leaves the queue.
fn analyzer(
    shared: &ServerShared,
    options: qcoral::Options,
    deadline: Option<Instant>,
    trace: Option<Arc<Trace>>,
) -> Analyzer {
    let a = Analyzer::new(options)
        .with_paving_cache(Arc::clone(&shared.paving_cache))
        .with_factor_store(Arc::clone(shared.store.factor_store()))
        .with_deadline(deadline.map(Deadline::at));
    match trace {
        // The decode-time trace (it already carries the queue_wait span)
        // becomes the analyzer's run trace, so analysis spans land on
        // the same timeline.
        Some(t) => a.with_trace(t),
        None => a,
    }
}
