//! `qcoral-service`: a batching quantification server with a persistent
//! cross-run factor cache.
//!
//! The paper's compositional scheme pays off most when the *same*
//! independent factors recur across many queries — exactly the shape of
//! a long-lived service answering quantification requests. This crate
//! turns the library into that service:
//!
//! * **Transport** — JSON-lines over plain TCP (`std::net`): one JSON
//!   object per line in each direction, ids correlate responses
//!   ([`wire`], [`protocol`]).
//! * **Scheduling** — a bounded admission queue feeding a fixed worker
//!   pool in micro-batches; overload rejects fast with an error
//!   response, and persistence work amortizes per batch ([`scheduler`]).
//! * **The headline mechanism** — a **cross-run factor-estimate store**
//!   ([`qcoral::FactorStore`]): factor results keyed by canonical factor
//!   form × projected profile × a fingerprint of the sampling options
//!   survive across requests, and — via a versioned JSON snapshot on
//!   disk ([`store`]) — across restarts. Because every sampling seed
//!   derives from the canonical factor key, a store hit is
//!   *bit-identical* to recomputation: a warm service answers recurring
//!   factors with zero new pavings and zero new samples, without
//!   perturbing any estimate. This is Algorithm 2's caching lifted from
//!   one analysis to the service's whole lifetime.
//!
//! # Quick start
//!
//! ```
//! use qcoral::Options;
//! use qcoral_service::{Client, Server, ServiceConfig};
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let answer = client
//!     .analyze_system(
//!         "var x in [0, 1]; pc x < 0.25;",
//!         Options::default().with_samples(2_000),
//!         None,
//!     )
//!     .unwrap();
//! assert!((answer.report.estimate.mean - 0.25).abs() < 0.02);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{
    AnalysisResponse, FailpointStatus, HealthReport, MetricsReport, NamedDist, Op, Outcome,
    Request, Response, ServerStatus, PROTOCOL_VERSION,
};
pub use scheduler::SchedulerMetrics;
pub use server::{Server, ServiceConfig};
pub use store::{PersistentStore, RecoveryReport, SNAPSHOT_VERSION};
