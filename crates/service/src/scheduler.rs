//! Request admission and micro-batched execution on a fixed worker pool.
//!
//! Three stages, all `std::thread` + `Mutex`/`Condvar` (no extra deps):
//!
//! 1. **Admission** — [`Scheduler::submit`] appends to a bounded queue;
//!    a full queue rejects immediately (the caller answers "overloaded")
//!    so a traffic spike degrades to fast failures instead of unbounded
//!    memory growth and ballooning latency.
//! 2. **Micro-batching** — a dispatcher thread drains up to `max_batch`
//!    admitted jobs at a time, hands them to the workers, and waits for
//!    the batch to finish before running the `after_batch` hook. The
//!    service uses the hook to persist the factor-store snapshot: writes
//!    are amortized per batch, not per request, and a snapshot always
//!    captures whole batches. Queued jobs whose deadline already passed
//!    are **shed** at this point — their `on_shed` callback answers the
//!    caller without the job ever pinning a worker.
//! 3. **Workers** — a fixed pool executing jobs concurrently within the
//!    batch. A panicking job is contained and counted; the pool keeps
//!    running.
//!
//! The batch barrier trades a bounded amount of head-of-line blocking
//! (at most `max_batch` jobs wait for the slowest member of the current
//! batch) for a consistent persistence point: snapshots only ever
//! capture whole batches. The server additionally caps per-request cost
//! (sample budget, paver time budget, symexec depth) at admission, which
//! bounds how slow the slowest batch member can be.
//!
//! Jobs are opaque `FnOnce` closures; the scheduler knows nothing about
//! the wire protocol.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qcoral_failpoints::failpoint;
use qcoral_obs::{log, Counter, Gauge, Histogram, Registry};

/// An admitted unit of work.
pub type Job = Box<dyn FnOnce() + Send>;

/// Returned by [`Scheduler::submit`] when the admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded;

/// Cumulative scheduler counters (see [`Scheduler::metrics`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerMetrics {
    /// Jobs a worker picked up and ran (including panicked ones).
    pub served: u64,
    /// Submissions rejected at admission (queue full or stopping).
    pub rejected: u64,
    /// Queued jobs shed by the dispatcher because their deadline had
    /// already passed before a worker was available.
    pub shed: u64,
    /// Jobs that panicked on a worker (contained; the pool survived).
    pub panicked: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
}

struct QueuedJob {
    job: Job,
    /// When the job entered the admission queue (feeds the queue-wait
    /// histogram at pickup; monotonic clock, never the RNG).
    enqueued_at: Instant,
    /// Shed the job (never run it) if this instant passes while queued.
    deadline: Option<Instant>,
    /// Runs on the dispatcher thread when the job is shed, so the caller
    /// still gets an answer. Must be cheap (it holds up dispatch).
    on_shed: Option<Job>,
}

struct Shared {
    /// Admission queue (bounded by `queue_cap`).
    admitted: Mutex<VecDeque<QueuedJob>>,
    admitted_cv: Condvar,
    /// Jobs of the in-flight batch, pulled by workers.
    ready: Mutex<VecDeque<Job>>,
    ready_cv: Condvar,
    /// Jobs of the in-flight batch not yet finished.
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
    queue_cap: usize,
    max_batch: usize,
    stop: AtomicBool,
    // Per-instance `qcoral-obs` counters: the scheduler owns its exact
    // numbers (tests assert them per instance) and the server *attaches*
    // these handles to its registry via `register_metrics` — one
    // counting substrate, no parallel bookkeeping.
    served: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    panicked: Arc<Counter>,
    batches: Arc<Counter>,
    /// Jobs currently waiting in the admission queue (live gauge).
    queue_depth: Arc<Gauge>,
    /// Jobs of the current batch not yet finished (live gauge).
    inflight_gauge: Arc<Gauge>,
    /// Time jobs spent queued before dispatch (or shedding), µs.
    queue_wait_us: Arc<Histogram>,
    /// Batch sizes at dispatch.
    batch_occupancy: Arc<Histogram>,
}

/// The scheduler handle. Dropping it without [`Scheduler::shutdown`]
/// leaks the threads; the server always shuts it down explicitly.
pub struct Scheduler {
    shared: Arc<Shared>,
    /// Joinable thread handles; `None` after shutdown. Interior-mutable
    /// so a shared (`Arc`-held) scheduler can be shut down in place.
    threads: Mutex<Option<Threads>>,
}

struct Threads {
    dispatcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts `workers` worker threads plus the dispatcher.
    /// `after_batch` runs on the dispatcher thread after every completed
    /// batch (and is given the batch size).
    pub fn start(
        workers: usize,
        queue_cap: usize,
        max_batch: usize,
        after_batch: impl Fn(usize) + Send + 'static,
    ) -> Scheduler {
        let shared = Arc::new(Shared {
            admitted: Mutex::new(VecDeque::new()),
            admitted_cv: Condvar::new(),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
            queue_cap: queue_cap.max(1),
            max_batch: max_batch.max(1),
            stop: AtomicBool::new(false),
            served: Counter::new(),
            rejected: Counter::new(),
            shed: Counter::new(),
            panicked: Counter::new(),
            batches: Counter::new(),
            queue_depth: Gauge::new(),
            inflight_gauge: Gauge::new(),
            queue_wait_us: Histogram::new(),
            batch_occupancy: Histogram::new(),
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qcoral-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("qcoral-dispatch".to_string())
                .spawn(move || dispatcher_loop(&shared, after_batch))
                .expect("spawn dispatcher")
        };

        Scheduler {
            shared,
            threads: Mutex::new(Some(Threads {
                dispatcher,
                workers: worker_handles,
            })),
        }
    }

    /// Admits a job, or rejects it if the queue is at capacity.
    pub fn submit(&self, job: Job) -> Result<(), Overloaded> {
        self.submit_with(job, None, None)
    }

    /// [`Scheduler::submit`] with a queue deadline: if `deadline` passes
    /// before a worker picks the job up, the dispatcher sheds it —
    /// `on_shed` runs instead of `job`, so the caller still gets an
    /// answer without the stale work pinning a worker.
    pub fn submit_with(
        &self,
        job: Job,
        deadline: Option<Instant>,
        on_shed: Option<Job>,
    ) -> Result<(), Overloaded> {
        let mut q = self.shared.admitted.lock().expect("scheduler lock");
        if self.shared.stop.load(Ordering::Acquire) || q.len() >= self.shared.queue_cap {
            drop(q);
            self.shared.rejected.inc();
            return Err(Overloaded);
        }
        q.push_back(QueuedJob {
            job,
            enqueued_at: Instant::now(),
            deadline,
            on_shed,
        });
        self.shared.queue_depth.set(q.len() as i64);
        drop(q);
        self.shared.admitted_cv.notify_one();
        Ok(())
    }

    /// Cumulative counters since start.
    pub fn metrics(&self) -> SchedulerMetrics {
        SchedulerMetrics {
            served: self.shared.served.get(),
            rejected: self.shared.rejected.get(),
            shed: self.shared.shed.get(),
            panicked: self.shared.panicked.get(),
            batches: self.shared.batches.get(),
        }
    }

    /// Jobs currently waiting in the admission queue (live).
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue_depth.get().max(0) as u64
    }

    /// Jobs of the in-flight batch not yet finished (live).
    pub fn inflight(&self) -> u64 {
        self.shared.inflight_gauge.get().max(0) as u64
    }

    /// Attaches this scheduler's counters, gauges and histograms to a
    /// metrics [`Registry`] under `qcoral_scheduler_*` names. The
    /// scheduler keeps owning the handles — per-instance exactness is
    /// untouched; the registry just renders them.
    pub fn register_metrics(&self, registry: &Registry) {
        let s = &self.shared;
        registry.register_counter(
            "qcoral_scheduler_served_total",
            "Jobs a worker picked up and ran (including panicked ones).",
            Arc::clone(&s.served),
        );
        registry.register_counter(
            "qcoral_scheduler_rejected_total",
            "Submissions rejected at admission (queue full or stopping).",
            Arc::clone(&s.rejected),
        );
        registry.register_counter(
            "qcoral_scheduler_shed_total",
            "Queued jobs shed because their deadline passed before dispatch.",
            Arc::clone(&s.shed),
        );
        registry.register_counter(
            "qcoral_scheduler_panicked_total",
            "Jobs that panicked on a worker (contained; the pool survived).",
            Arc::clone(&s.panicked),
        );
        registry.register_counter(
            "qcoral_scheduler_batches_total",
            "Micro-batches dispatched to the worker pool.",
            Arc::clone(&s.batches),
        );
        registry.register_gauge(
            "qcoral_scheduler_queue_depth",
            "Jobs currently waiting in the admission queue.",
            Arc::clone(&s.queue_depth),
        );
        registry.register_gauge(
            "qcoral_scheduler_inflight",
            "Jobs of the current micro-batch not yet finished.",
            Arc::clone(&s.inflight_gauge),
        );
        registry.register_histogram(
            "qcoral_scheduler_queue_wait_us",
            "Time jobs spent in the admission queue before dispatch, microseconds.",
            Arc::clone(&s.queue_wait_us),
        );
        registry.register_histogram(
            "qcoral_scheduler_batch_occupancy",
            "Micro-batch sizes at dispatch.",
            Arc::clone(&s.batch_occupancy),
        );
    }

    /// Drains already-admitted jobs, then stops and joins all threads.
    /// Idempotent; must not be called from a worker or dispatcher thread
    /// (it joins them).
    pub fn shutdown(&self) {
        let Some(threads) = self.threads.lock().expect("scheduler lock").take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::Release);
        self.shared.admitted_cv.notify_all();
        self.shared.ready_cv.notify_all();
        let _ = threads.dispatcher.join();
        // The dispatcher exits only between batches, so nothing is
        // in-flight anymore; wake and join the workers.
        self.shared.ready_cv.notify_all();
        for w in threads.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut ready = shared.ready.lock().expect("scheduler lock");
            loop {
                if let Some(job) = ready.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                ready = shared.ready_cv.wait(ready).expect("scheduler lock");
            }
        };
        // A panicking job must neither kill the worker nor skip the
        // inflight decrement — either would deadlock the dispatcher's
        // batch barrier and stall the whole pool.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if failpoint!("worker.job") {
                panic!("injected worker job panic");
            }
            job();
        }));
        if outcome.is_err() {
            shared.panicked.inc();
            log::warn(
                "job_panicked",
                &[("detail", "contained; worker continues".to_string())],
            );
        }
        shared.served.inc();
        shared.inflight_gauge.sub(1);
        let mut inflight = shared.inflight.lock().expect("scheduler lock");
        *inflight -= 1;
        if *inflight == 0 {
            shared.inflight_cv.notify_all();
        }
    }
}

fn dispatcher_loop(shared: &Shared, after_batch: impl Fn(usize)) {
    loop {
        // Collect the next micro-batch: whatever is admitted, capped —
        // shedding deadline-expired jobs along the way (they answer via
        // `on_shed` and never consume a batch slot or a worker).
        let batch: Vec<Job> = {
            let mut q = shared.admitted.lock().expect("scheduler lock");
            'collect: loop {
                let mut live: Vec<Job> = Vec::new();
                while live.len() < shared.max_batch {
                    let Some(queued) = q.pop_front() else { break };
                    let now = Instant::now();
                    shared
                        .queue_wait_us
                        .record(now.duration_since(queued.enqueued_at).as_micros() as u64);
                    let expired = queued.deadline.is_some_and(|d| now >= d);
                    if expired {
                        shared.shed.inc();
                        if let Some(on_shed) = queued.on_shed {
                            // Contained like a worker job: a panicking
                            // shed callback must not kill dispatch.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(on_shed));
                        }
                    } else {
                        live.push(queued.job);
                    }
                }
                shared.queue_depth.set(q.len() as i64);
                if !live.is_empty() {
                    break 'collect live;
                }
                // Everything drained was shed (or the queue was empty);
                // wait for more work.
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if q.is_empty() {
                    q = shared.admitted_cv.wait(q).expect("scheduler lock");
                }
            }
        };

        let n = batch.len();
        shared.batch_occupancy.record(n as u64);
        shared.inflight_gauge.set(n as i64);
        *shared.inflight.lock().expect("scheduler lock") = n;
        {
            let mut ready = shared.ready.lock().expect("scheduler lock");
            ready.extend(batch);
        }
        shared.ready_cv.notify_all();

        // Batch barrier: wait for the workers to finish everything.
        let mut inflight = shared.inflight.lock().expect("scheduler lock");
        while *inflight > 0 {
            inflight = shared.inflight_cv.wait(inflight).expect("scheduler lock");
        }
        drop(inflight);

        shared.batches.inc();
        after_batch(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn executes_everything_and_batches() {
        let batches = Arc::new(Mutex::new(Vec::new()));
        let b2 = Arc::clone(&batches);
        let sched = Scheduler::start(2, 64, 4, move |n| {
            b2.lock().unwrap().push(n);
        });
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            sched
                .submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
        }
        // Wait for completion, then stop.
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
        let batches = batches.lock().unwrap();
        assert_eq!(batches.iter().sum::<usize>(), 10);
        assert!(
            batches.iter().all(|&n| (1..=4).contains(&n)),
            "batch sizes within [1, max_batch]: {batches:?}"
        );
    }

    #[test]
    fn panicking_jobs_do_not_stall_the_pool() {
        let sched = Scheduler::start(1, 16, 2, |_| {});
        sched.submit(Box::new(|| panic!("job blew up"))).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            sched
                .submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
        }
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 4, "pool stalled after a panic");
        let m = sched.metrics();
        assert_eq!(m.served, 5, "panicked job still counts as served");
        assert_eq!(m.panicked, 1, "panic counted");
        sched.shutdown();
    }

    #[test]
    fn admission_rejects_when_full() {
        // One worker blocked on a slow job, queue of 2: the 4th submit
        // must be rejected.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = Scheduler::start(1, 2, 1, |_| {});
        let g = Arc::clone(&gate);
        sched
            .submit(Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        // Give the dispatcher time to move the blocker to a worker.
        std::thread::sleep(Duration::from_millis(20));
        sched.submit(Box::new(|| {})).unwrap();
        sched.submit(Box::new(|| {})).unwrap();
        let r = sched.submit(Box::new(|| {}));
        assert_eq!(r, Err(Overloaded));
        assert_eq!(sched.metrics().rejected, 1, "one rejection counted");
        // Open the gate and drain.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        for _ in 0..200 {
            if sched.metrics().served == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sched.metrics().served, 3);
        sched.shutdown();
    }

    #[test]
    fn expired_queued_jobs_are_shed_not_run() {
        // Block the single worker so submissions sit in the queue past
        // their deadline.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = Scheduler::start(1, 16, 4, |_| {});
        let g = Arc::clone(&gate);
        sched
            .submit(Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let ran = Arc::new(AtomicUsize::new(0));
        let shed_seen = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let ran = Arc::clone(&ran);
            let shed_seen = Arc::clone(&shed_seen);
            sched
                .submit_with(
                    Box::new(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }),
                    Some(Instant::now() - Duration::from_millis(1)),
                    Some(Box::new(move || {
                        shed_seen.fetch_add(1, Ordering::SeqCst);
                    })),
                )
                .unwrap();
        }
        // A live job behind the expired ones still runs.
        let live = Arc::new(AtomicUsize::new(0));
        {
            let live = Arc::clone(&live);
            sched
                .submit_with(
                    Box::new(move || {
                        live.fetch_add(1, Ordering::SeqCst);
                    }),
                    Some(Instant::now() + Duration::from_secs(60)),
                    None,
                )
                .unwrap();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        for _ in 0..200 {
            if live.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "expired jobs must not run");
        assert_eq!(shed_seen.load(Ordering::SeqCst), 3, "on_shed ran for each");
        assert_eq!(live.load(Ordering::SeqCst), 1, "live job survived shedding");
        let m = sched.metrics();
        assert_eq!(m.shed, 3);
        assert_eq!(m.served, 2, "blocker + live job");
    }
}
