//! A blocking JSON-lines client, used by `qcoralctl`, the benches and
//! the integration tests.
//!
//! # Retries
//!
//! [`Client::connect_with`] takes a [`RetryPolicy`]: connect failures
//! and *transient* transport failures mid-call (connection reset, broken
//! pipe, a server that vanished between frames) are retried with capped
//! exponential backoff and seeded jitter. Resending a request is safe
//! here in a way it is not for most services: analyses are
//! deterministic, so executing the same request twice returns
//! bit-identical answers and mutates nothing but caches — a retry can
//! cost duplicate compute (usually not even that, thanks to the factor
//! store), never divergent state.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use qcoral::Options;
use qcoral_mc::UsageProfile;

use crate::protocol::{
    AnalysisResponse, HealthReport, MetricsReport, NamedDist, Op, Outcome, Request, Response,
    ServerStatus,
};
use crate::wire::{decode_response, encode_request, WireError};

/// Client-side error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent a frame this client cannot decode.
    Wire(WireError),
    /// The server answered with [`Outcome::Error`].
    Remote(String),
    /// The server answered with an outcome the call does not expect
    /// (e.g. a status payload for an analysis request).
    UnexpectedOutcome,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
            ClientError::UnexpectedOutcome => write!(f, "unexpected outcome kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Retry behavior for connects and transient mid-call transport
/// failures (see the module docs for why resending is safe).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 ⇒ fail fast, the
    /// [`Client::connect`] default).
    pub retries: u32,
    /// Backoff before retry `k` is `min(base_delay · 2ᵏ, max_delay)`,
    /// scaled by jitter.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter factor (each delay is scaled into
    /// [0.5, 1.0) so synchronized clients fan out). Deterministic per
    /// (seed, attempt), so tests can predict sleep bounds.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0,
        }
    }

    /// `retries` attempts with the default 50 ms base / 2 s cap.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            ..RetryPolicy::none()
        }
    }

    /// The backoff before retry number `attempt` (0-based).
    fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        // Seeded jitter in [0.5, 1.0): splitmix64 of (seed, attempt).
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt) + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Failure kinds worth retrying: the connection died or never came up,
/// with no evidence the server *rejected* anything. Anything else
/// (protocol errors, remote errors) is deterministic and surfaces
/// immediately.
fn is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        ConnectionRefused
            | ConnectionReset
            | ConnectionAborted
            | BrokenPipe
            | UnexpectedEof
            | NotConnected
            | TimedOut
            | WouldBlock
    )
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A connected client. One in-flight request at a time ([`Client::call`]
/// blocks until the matching response arrives).
pub struct Client {
    addrs: Vec<SocketAddr>,
    conn: Option<Conn>,
    next_id: u64,
    policy: RetryPolicy,
}

impl Client {
    /// Connects to a running `qcoral-service`, failing fast (no
    /// retries).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::connect_with(addr, RetryPolicy::none())
    }

    /// Connects with a retry policy covering both this connect and
    /// every subsequent [`Client::call`]'s transient failures.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut client = Client {
            addrs,
            conn: None,
            next_id: 1,
            policy,
        };
        let mut attempt = 0u32;
        loop {
            match client.ensure_connected() {
                Ok(_) => return Ok(client),
                Err(e) if attempt < policy.retries && is_transient(&e) => {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addrs.as_slice())?;
            let writer = stream.try_clone()?;
            self.conn = Some(Conn {
                reader: BufReader::new(stream),
                writer,
            });
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request and blocks for its response (responses with
    /// other ids — e.g. late answers to abandoned calls — are skipped).
    /// Transient transport failures reconnect and resend per the retry
    /// policy; the request keeps its id across attempts.
    pub fn call(&mut self, op: Op) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(&Request { id, op });
        let mut attempt = 0u32;
        loop {
            let result = match self.ensure_connected() {
                Ok(conn) => send_and_receive(conn, id, &frame),
                Err(e) => Err(ClientError::Io(e)),
            };
            match result {
                Err(ClientError::Io(e)) if attempt < self.policy.retries && is_transient(&e) => {
                    // The socket's framing state is unknown after an I/O
                    // failure; drop it and reconnect fresh.
                    self.conn = None;
                    std::thread::sleep(self.policy.delay(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Quantifies a raw constraint system (`var …; pc …;`).
    pub fn analyze_system(
        &mut self,
        source: &str,
        options: Options,
        profile: Option<UsageProfile>,
    ) -> Result<AnalysisResponse, ClientError> {
        let response = self.call(Op::System {
            source: source.to_string(),
            options,
            profile,
        })?;
        expect_report(response.outcome)
    }

    /// Quantifies a MiniJ program end to end, optionally under a
    /// usage profile of named marginals (`None` ⇒ uniform).
    pub fn analyze_program(
        &mut self,
        source: &str,
        options: Options,
        max_depth: Option<u64>,
        profile: Option<Vec<NamedDist>>,
    ) -> Result<AnalysisResponse, ClientError> {
        let response = self.call(Op::Program {
            source: source.to_string(),
            options,
            max_depth,
            profile,
        })?;
        expect_report(response.outcome)
    }

    /// Fetches server status/metrics.
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        match self.call(Op::Status)?.outcome {
            Outcome::Status(s) => Ok(s),
            Outcome::Error { message } => Err(ClientError::Remote(message)),
            _ => Err(ClientError::UnexpectedOutcome),
        }
    }

    /// Fetches the fault-tolerance health report (recovery outcome, WAL
    /// and scheduler fault counters).
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.call(Op::Health)?.outcome {
            Outcome::Health(h) => Ok(h),
            Outcome::Error { message } => Err(ClientError::Remote(message)),
            _ => Err(ClientError::UnexpectedOutcome),
        }
    }

    /// Scrapes the server's metric families (Prometheus-style text
    /// exposition).
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(Op::Metrics)?.outcome {
            Outcome::Metrics(m) => Ok(m),
            Outcome::Error { message } => Err(ClientError::Remote(message)),
            _ => Err(ClientError::UnexpectedOutcome),
        }
    }
}

fn send_and_receive(conn: &mut Conn, id: u64, frame: &str) -> Result<Response, ClientError> {
    conn.writer.write_all(frame.as_bytes())?;
    conn.writer.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        let n = conn.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = decode_response(&line).map_err(ClientError::Wire)?;
        if response.id == id {
            return Ok(response);
        }
        // Request ids start at 1, so id 0 is the server telling the
        // *connection* something is wrong (connection-limit refusal,
        // a frame it could not attribute). Surface it — skipping
        // would lose the message and wait for an answer that may
        // never come.
        if response.id == 0 {
            if let Outcome::Error { message } = response.outcome {
                return Err(ClientError::Remote(message));
            }
        }
    }
}

fn expect_report(outcome: Outcome) -> Result<AnalysisResponse, ClientError> {
    match outcome {
        Outcome::Report(r) => Ok(r),
        Outcome::Error { message } => Err(ClientError::Remote(message)),
        _ => Err(ClientError::UnexpectedOutcome),
    }
}
