//! A blocking JSON-lines client, used by `qcoralctl`, the benches and
//! the integration tests.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use qcoral::Options;
use qcoral_mc::UsageProfile;

use crate::protocol::{AnalysisResponse, NamedDist, Op, Outcome, Request, Response, ServerStatus};
use crate::wire::{decode_response, encode_request, WireError};

/// Client-side error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent a frame this client cannot decode.
    Wire(WireError),
    /// The server answered with [`Outcome::Error`].
    Remote(String),
    /// The server answered with an outcome the call does not expect
    /// (e.g. a status payload for an analysis request).
    UnexpectedOutcome,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
            ClientError::UnexpectedOutcome => write!(f, "unexpected outcome kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected client. One in-flight request at a time ([`Client::call`]
/// blocks until the matching response arrives).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running `qcoral-service`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its response (responses with
    /// other ids — e.g. late answers to abandoned calls — are skipped).
    pub fn call(&mut self, op: Op) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(&Request { id, op });
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            let response = decode_response(&line).map_err(ClientError::Wire)?;
            if response.id == id {
                return Ok(response);
            }
            // Request ids start at 1, so id 0 is the server telling the
            // *connection* something is wrong (connection-limit refusal,
            // a frame it could not attribute). Surface it — skipping
            // would lose the message and wait for an answer that may
            // never come.
            if response.id == 0 {
                if let Outcome::Error { message } = response.outcome {
                    return Err(ClientError::Remote(message));
                }
            }
        }
    }

    /// Quantifies a raw constraint system (`var …; pc …;`).
    pub fn analyze_system(
        &mut self,
        source: &str,
        options: Options,
        profile: Option<UsageProfile>,
    ) -> Result<AnalysisResponse, ClientError> {
        let response = self.call(Op::System {
            source: source.to_string(),
            options,
            profile,
        })?;
        expect_report(response.outcome)
    }

    /// Quantifies a MiniJ program end to end, optionally under a
    /// usage profile of named marginals (`None` ⇒ uniform).
    pub fn analyze_program(
        &mut self,
        source: &str,
        options: Options,
        max_depth: Option<u64>,
        profile: Option<Vec<NamedDist>>,
    ) -> Result<AnalysisResponse, ClientError> {
        let response = self.call(Op::Program {
            source: source.to_string(),
            options,
            max_depth,
            profile,
        })?;
        expect_report(response.outcome)
    }

    /// Fetches server status/metrics.
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        match self.call(Op::Status)?.outcome {
            Outcome::Status(s) => Ok(s),
            Outcome::Error { message } => Err(ClientError::Remote(message)),
            Outcome::Report(_) => Err(ClientError::UnexpectedOutcome),
        }
    }
}

fn expect_report(outcome: Outcome) -> Result<AnalysisResponse, ClientError> {
    match outcome {
        Outcome::Report(r) => Ok(r),
        Outcome::Error { message } => Err(ClientError::Remote(message)),
        Outcome::Status(_) => Err(ClientError::UnexpectedOutcome),
    }
}
