//! JSON-lines framing: one compact JSON object per `\n`-terminated line.
//!
//! Compact serialization never emits a raw newline (strings escape
//! control characters), so a line is always exactly one frame. Decoding
//! enforces a frame-size cap and rejects anything that does not parse
//! into the expected type — a malformed frame is an error value, never a
//! panic or a desynchronized stream.

use std::fmt;

use crate::protocol::{Request, Response};

/// Upper bound on one frame's size. Larger lines are rejected before
/// parsing so a hostile client cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Framing/decoding error.
#[derive(Clone, Debug)]
pub struct WireError(String);

impl WireError {
    fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Encodes a request as one frame (trailing newline included).
pub fn encode_request(r: &Request) -> String {
    let mut line = serde_json::to_string(r).expect("request serializes");
    line.push('\n');
    line
}

/// Encodes a response as one frame (trailing newline included).
pub fn encode_response(r: &Response) -> String {
    let mut line = serde_json::to_string(r).expect("response serializes");
    line.push('\n');
    line
}

fn check_frame(line: &str) -> Result<&str, WireError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(WireError::new(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            line.len()
        )));
    }
    let trimmed = line.trim_end_matches(['\n', '\r']);
    if trimmed.trim().is_empty() {
        return Err(WireError::new("empty frame"));
    }
    Ok(trimmed)
}

/// Decodes one request frame.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    let frame = check_frame(line)?;
    serde_json::from_str(frame).map_err(|e| WireError::new(format!("bad request frame: {e}")))
}

/// Decodes one response frame.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let frame = check_frame(line)?;
    serde_json::from_str(frame).map_err(|e| WireError::new(format!("bad response frame: {e}")))
}

/// What [`read_frame`] read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// EOF before any bytes.
    Eof,
    /// One frame of this many bytes was appended to `line`.
    Frame(usize),
    /// A full line was consumed but its bytes were not valid UTF-8, so
    /// no text was produced. The stream is still framed (everything
    /// through the newline was consumed), so the caller can answer with
    /// a decode error and keep reading.
    NotUtf8,
}

/// Reads one `\n`-terminated frame into `line`, erroring out once it
/// exceeds [`MAX_FRAME_BYTES`] (the stream can no longer be framed, so
/// the caller should drop the connection).
///
/// Bytes are accumulated raw and converted to text once the line is
/// complete: a multi-byte UTF-8 character split across `fill_buf`
/// chunks (TCP segmentation or the reader's internal buffer boundary)
/// is reassembled, not mangled. Truly invalid UTF-8 is reported as
/// [`FrameRead::NotUtf8`] — never silently replaced, which would let a
/// corrupted frame parse as JSON with mangled string content.
pub fn read_frame(
    reader: &mut impl std::io::BufRead,
    line: &mut String,
) -> std::io::Result<FrameRead> {
    let mut bytes = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            break; // EOF (possibly mid-line; caller sees no \n)
        }
        let upto = buf.iter().position(|&b| b == b'\n');
        let take = upto.map(|i| i + 1).unwrap_or(buf.len());
        if bytes.len() + take > MAX_FRAME_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame too large",
            ));
        }
        bytes.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if upto.is_some() {
            break;
        }
    }
    if bytes.is_empty() {
        return Ok(FrameRead::Eof);
    }
    match String::from_utf8(bytes) {
        Ok(text) => {
            line.push_str(&text);
            Ok(FrameRead::Frame(text.len()))
        }
        Err(_) => Ok(FrameRead::NotUtf8),
    }
}

/// Best-effort extraction of the `id` of a frame that failed full
/// decoding, so the error response can still be correlated. Returns 0
/// when even that much cannot be parsed.
pub fn salvage_id(line: &str) -> u64 {
    serde_json::Value::parse(line.trim_end_matches(['\n', '\r']))
        .ok()
        .and_then(|v| v.get("id").cloned())
        .and_then(|v| match v {
            serde_json::Value::Number(n) => n.parse::<u64>().ok(),
            _ => None,
        })
        .unwrap_or(0)
}
