//! Global adaptive integration of the indicator function — the
//! `NIntegrate` stand-in.
//!
//! Mathematica's default method, as the paper summarizes it (§6.2), is
//! *Global Adaptive Integration* [Malcolm & Simpson, 1975]: maintain a
//! pool of regions with local error estimates, repeatedly bisect the
//! region with the largest error, and stop when the accuracy goal is met
//! or the recursion budget is exhausted. For the probability of a
//! constraint set the integrand is an indicator function, so the local
//! rule evaluates the constraints on a deterministic point pattern; a
//! region whose points all agree is assumed pure (that assumption is
//! exactly what makes the method miss thin features when the default
//! budget is too small — the failure the paper observes on PACK).

use std::collections::BinaryHeap;

use qcoral_constraints::{ConstraintSet, PathCondition};
use qcoral_interval::IntervalBox;

/// Configuration for the adaptive integrator.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Absolute error goal; refinement stops once the summed local error
    /// estimates drop below it.
    pub accuracy_goal: f64,
    /// Maximum number of regions (the "recursion depth limit" of the
    /// paper's description).
    pub max_regions: usize,
}

impl Default for AdaptiveConfig {
    /// `NIntegrate`-flavoured defaults: 10⁻⁴ absolute accuracy, 20 000
    /// regions.
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            accuracy_goal: 1e-4,
            max_regions: 20_000,
        }
    }
}

/// The integrator's output.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveResult {
    /// Estimated probability.
    pub value: f64,
    /// Remaining summed local error estimate.
    pub error_estimate: f64,
    /// Number of regions examined.
    pub regions: usize,
    /// `false` if the accuracy goal was *not* met within the region
    /// budget (the paper notes Mathematica reports this situation on
    /// PACK).
    pub converged: bool,
}

struct Region {
    boxed: IntervalBox,
    weight: f64,
    frac: f64,
    error: f64,
}

impl PartialEq for Region {
    fn eq(&self, other: &Self) -> bool {
        self.error == other.error
    }
}

impl Eq for Region {}

impl PartialOrd for Region {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Region {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.error
            .partial_cmp(&other.error)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Deterministic point pattern for a region: center, face midpoints and a
/// bounded set of corner points.
fn sample_points(boxed: &IntervalBox) -> Vec<Vec<f64>> {
    let d = boxed.ndim();
    let center = boxed.center();
    let mut pts = vec![center.clone()];
    for i in 0..d {
        for v in [boxed[i].lo(), boxed[i].hi()] {
            let mut p = center.clone();
            // Stay strictly inside to avoid double-counting shared faces.
            p[i] = 0.99 * v + 0.01 * center[i];
            pts.push(p);
        }
    }
    // Corners (up to 2^min(d, 4) diagonal probes).
    let corner_dims = d.min(4);
    for mask in 0..(1u32 << corner_dims) {
        let mut p = center.clone();
        for (i, pi) in p.iter_mut().enumerate().take(corner_dims) {
            let v = if mask & (1 << i) != 0 {
                boxed[i].hi()
            } else {
                boxed[i].lo()
            };
            *pi = 0.98 * v + 0.02 * center[i];
        }
        pts.push(p);
    }
    pts
}

fn classify(pc: &PathCondition, boxed: &IntervalBox) -> f64 {
    let pts = sample_points(boxed);
    let hits = pts.iter().filter(|p| pc.holds(p)).count();
    hits as f64 / pts.len() as f64
}

fn region_error(weight: f64, frac: f64) -> f64 {
    if frac == 0.0 || frac == 1.0 {
        // Pure by sampling: assumed converged. This optimism is the
        // documented thin-feature failure mode.
        0.0
    } else {
        weight * (frac.min(1.0 - frac) + 0.25)
    }
}

/// Integrates the indicator of one path condition over the box (relative
/// measure, uniform weight).
fn integrate_pc(pc: &PathCondition, domain: &IntervalBox, cfg: &AdaptiveConfig) -> AdaptiveResult {
    let mut heap = BinaryHeap::new();
    let frac = classify(pc, domain);
    heap.push(Region {
        boxed: domain.clone(),
        weight: 1.0,
        frac,
        error: region_error(1.0, frac),
    });
    let mut regions = 1usize;
    let mut settled_value = 0.0;
    let mut settled_error = 0.0;

    loop {
        let pending_error: f64 = heap.iter().map(|r| r.error).sum();
        if pending_error + settled_error <= cfg.accuracy_goal {
            break;
        }
        if regions >= cfg.max_regions {
            break;
        }
        let Some(region) = heap.pop() else { break };
        if region.error == 0.0 || region.boxed.max_width() < 1e-9 {
            settled_value += region.weight * region.frac;
            settled_error += region.error.min(region.weight);
            continue;
        }
        let (l, r) = region.boxed.bisect();
        for half in [l, r] {
            let w = region.weight / 2.0;
            let f = classify(pc, &half);
            heap.push(Region {
                boxed: half,
                weight: w,
                frac: f,
                error: region_error(w, f),
            });
        }
        regions += 2;
    }

    let mut value = settled_value;
    let mut error = settled_error;
    for r in heap {
        value += r.weight * r.frac;
        error += r.error;
    }
    AdaptiveResult {
        value,
        error_estimate: error,
        regions,
        converged: error <= cfg.accuracy_goal,
    }
}

/// Estimates `Pr[x uniform over domain satisfies cs]` by global adaptive
/// integration. Path conditions are integrated separately (they are
/// disjoint) and the contributions summed.
pub fn adaptive_probability(
    cs: &ConstraintSet,
    domain: &IntervalBox,
    cfg: &AdaptiveConfig,
) -> AdaptiveResult {
    let mut total = AdaptiveResult {
        value: 0.0,
        error_estimate: 0.0,
        regions: 0,
        converged: true,
    };
    // Split the region budget across path conditions.
    let per_pc = AdaptiveConfig {
        accuracy_goal: cfg.accuracy_goal / cs.len().max(1) as f64,
        max_regions: (cfg.max_regions / cs.len().max(1)).max(64),
    };
    for pc in cs.pcs() {
        let r = integrate_pc(pc, domain, &per_pc);
        total.value += r.value;
        total.error_estimate += r.error_estimate;
        total.regions += r.regions;
        total.converged &= r.converged;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_icp::domain_box;

    fn setup(src: &str) -> (ConstraintSet, IntervalBox) {
        let sys = parse_system(src).unwrap();
        let b = domain_box(&sys.domain);
        (sys.constraint_set, b)
    }

    #[test]
    fn half_space_converges_to_half() {
        let (cs, dom) = setup("var x in [0, 1]; pc x < 0.5;");
        let r = adaptive_probability(&cs, &dom, &AdaptiveConfig::default());
        assert!((r.value - 0.5).abs() < 1e-3, "value {}", r.value);
        assert!(r.converged);
    }

    #[test]
    fn triangle_area() {
        let (cs, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x <= -y && y <= x;");
        let r = adaptive_probability(&cs, &dom, &AdaptiveConfig::default());
        assert!((r.value - 0.25).abs() < 5e-3, "value {}", r.value);
    }

    #[test]
    fn circle_area_2d() {
        let (cs, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x*x + y*y <= 1;");
        let r = adaptive_probability(
            &cs,
            &dom,
            &AdaptiveConfig {
                accuracy_goal: 1e-3,
                max_regions: 60_000,
            },
        );
        let exact = std::f64::consts::PI / 4.0;
        assert!(
            (r.value - exact).abs() < 5e-3,
            "value {} vs {exact}",
            r.value
        );
    }

    #[test]
    fn disjoint_pcs_sum() {
        let (cs, dom) = setup("var x in [0, 1]; pc x < 0.25; pc x > 0.75;");
        let r = adaptive_probability(&cs, &dom, &AdaptiveConfig::default());
        assert!((r.value - 0.5).abs() < 2e-3, "value {}", r.value);
    }

    #[test]
    fn thin_feature_may_not_converge() {
        // A sliver of width 1e-5: the default pattern misses it at coarse
        // scales and the method can claim convergence at a wrong value —
        // the documented NIntegrate failure mode (PACK row of Table 3).
        let (cs, dom) = setup("var x in [0, 1]; var y in [0, 1]; pc x > 0.423 && x < 0.42301;");
        let r = adaptive_probability(
            &cs,
            &dom,
            &AdaptiveConfig {
                accuracy_goal: 1e-4,
                max_regions: 256,
            },
        );
        // Either it reports non-convergence or a value far from truth —
        // accept both, but it must not crash and must stay in [0, 1.5].
        assert!(r.value >= 0.0 && r.value < 1.5);
    }

    #[test]
    fn unsatisfiable_is_zero() {
        let (cs, dom) = setup("var x in [0, 1]; pc x > 2;");
        let r = adaptive_probability(&cs, &dom, &AdaptiveConfig::default());
        assert_eq!(r.value, 0.0);
        assert!(r.converged);
    }

    #[test]
    fn region_budget_respected() {
        let (cs, dom) = setup(
            "var x in [-1,1]; var y in [-1,1]; var z in [-1,1];
             pc x*x + y*y + z*z <= 1;",
        );
        let cfg = AdaptiveConfig {
            accuracy_goal: 1e-12,
            max_regions: 1000,
        };
        let r = adaptive_probability(&cs, &dom, &cfg);
        assert!(!r.converged);
        assert!(r.regions <= 1002);
        // Still in the right ballpark (sphere/cube = π/6 ≈ 0.5236).
        assert!(
            (r.value - std::f64::consts::FRAC_PI_6).abs() < 0.1,
            "value {}",
            r.value
        );
    }
}
