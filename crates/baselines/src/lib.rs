//! Baseline quantification methods the paper compares against (§6.2,
//! Table 3; §6.3, Table 4).
//!
//! * [`adaptive`] — a deterministic *global adaptive integration* scheme,
//!   standing in for Mathematica's `NIntegrate` (proprietary; the paper
//!   describes its algorithm as recursive region analysis with
//!   error-driven bisection \[21\]). Accurate on low-dimensional, smooth
//!   problems; degrades on many-path, high-dimensional subjects — the
//!   same failure mode the paper reports (PACK: missed interval; VOL:
//!   value > 1).
//! * [`volcomp`] — an iterative interval-bounding method, standing in for
//!   the VolComp tool of Sankaranarayanan et al. \[30\] (research artifact,
//!   no longer distributed). Returns a closed interval guaranteed to
//!   contain the exact probability; returns a vacuous `[0, 1]` when
//!   branch-and-bound cannot prune (the paper's VOL row).
//! * [`plain_mc`] — whole-disjunction hit-or-miss Monte Carlo, the
//!   "Mathematica Monte Carlo" column of Table 4.

#![warn(missing_docs)]

pub mod adaptive;
pub mod plain_mc;
pub mod volcomp;

pub use adaptive::{adaptive_probability, AdaptiveConfig, AdaptiveResult};
pub use plain_mc::{plain_monte_carlo, plain_monte_carlo_plan};
pub use volcomp::{volcomp_bounds, ProbBounds, VolCompConfig};
