//! Whole-disjunction hit-or-miss Monte Carlo: the "Monte Carlo
//! (Mathematica)" baseline column of the paper's Table 4.
//!
//! Unlike `qCORAL{}` — which analyzes each path condition separately and
//! composes per Theorem 1 — this baseline samples the full input domain
//! and tests the whole disjunction at once.

use rand::Rng;

use qcoral_constraints::{ConstraintSet, EvalTape};
use qcoral_interval::IntervalBox;
use qcoral_mc::{hit_or_miss, hit_or_miss_plan, Estimate, SamplePlan, UsageProfile};

/// Estimates `Pr[x ∼ profile satisfies cs]` with a single hit-or-miss run
/// over the whole domain.
///
/// # Panics
///
/// Panics if `n == 0` or on dimension mismatches.
pub fn plain_monte_carlo(
    cs: &ConstraintSet,
    domain: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    rng: &mut impl Rng,
) -> Estimate {
    let tapes: Vec<EvalTape> = cs.pcs().iter().map(EvalTape::compile).collect();
    hit_or_miss(
        &mut |p| tapes.iter().any(|t| t.holds(p)),
        domain,
        profile,
        n,
        rng,
    )
}

/// [`plain_monte_carlo`] on the deterministic chunked [`SamplePlan`]: the
/// shared hot-path sampler API, bit-identical across thread schedules.
///
/// # Panics
///
/// Panics if `n == 0` or on dimension mismatches.
pub fn plain_monte_carlo_plan(
    cs: &ConstraintSet,
    domain: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    plan: SamplePlan,
) -> Estimate {
    let tapes: Vec<EvalTape> = cs.pcs().iter().map(EvalTape::compile).collect();
    hit_or_miss_plan(
        &|p: &[f64]| tapes.iter().any(|t| t.holds(p)),
        domain,
        profile,
        n,
        plan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_icp::domain_box;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matches_known_probability() {
        let sys =
            parse_system("var x in [-1, 1]; var y in [-1, 1]; pc x <= -y && y <= x;").unwrap();
        let dom = domain_box(&sys.domain);
        let profile = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(99);
        let est = plain_monte_carlo(&sys.constraint_set, &dom, &profile, 20_000, &mut rng);
        assert!((est.mean - 0.25).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn disjunction_counts_once_per_sample() {
        // Two disjoint PCs covering [0, 0.5): the union probability is 0.5
        // even though membership is tested against both.
        let sys = parse_system("var x in [0, 1]; pc x < 0.25; pc x >= 0.25 && x < 0.5;").unwrap();
        let dom = domain_box(&sys.domain);
        let profile = UsageProfile::uniform(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let est = plain_monte_carlo(&sys.constraint_set, &dom, &profile, 20_000, &mut rng);
        assert!((est.mean - 0.5).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn empty_set_is_zero() {
        let sys = parse_system("var x in [0, 1];").unwrap();
        let dom = domain_box(&sys.domain);
        let profile = UsageProfile::uniform(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let est = plain_monte_carlo(&sys.constraint_set, &dom, &profile, 100, &mut rng);
        assert_eq!(est, Estimate::ZERO);
    }
}
