//! Iterative interval bounding — the VolComp stand-in.
//!
//! VolComp [Sankaranarayanan et al., PLDI 2013] produces "a tight closed
//! interval over the real numbers containing the requested solution"
//! (paper §6.2) by iteratively bounding the volume of the solution set
//! from below (regions proven all-solutions) and above (1 minus regions
//! proven solution-free). This reproduction uses the ICP contractor for
//! both proofs and branch-and-bound refinement in between; like the
//! original, it degenerates to the vacuous `[0, 1]` when pruning fails
//! (the paper's VOL subject).

use std::collections::BinaryHeap;
use std::fmt;
use std::time::{Duration, Instant};

use qcoral_constraints::ConstraintSet;
use qcoral_icp::{Contractor, Tri};
use qcoral_interval::IntervalBox;

/// A closed probability interval guaranteed to contain the exact value.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ProbBounds {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ProbBounds {
    /// Interval width (the paper reports tightness of VolComp bounds).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Returns `true` if `p` lies within the bounds.
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo && p <= self.hi
    }
}

impl fmt::Display for ProbBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

/// Budget knobs for the bounding loop.
#[derive(Clone, Debug)]
pub struct VolCompConfig {
    /// Box-splitting budget per path condition.
    pub max_boxes_per_pc: usize,
    /// Wall-clock budget per path condition.
    pub time_budget: Duration,
    /// Boxes narrower than this (max side) are not split further.
    pub min_width: f64,
}

impl Default for VolCompConfig {
    fn default() -> VolCompConfig {
        VolCompConfig {
            max_boxes_per_pc: 2_000,
            time_budget: Duration::from_secs(5),
            min_width: 1e-4,
        }
    }
}

struct Item {
    boxed: IntervalBox,
    weight: f64,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight
    }
}

impl Eq for Item {}

impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .partial_cmp(&other.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Bounds `Pr[x uniform over domain satisfies cs]` within a guaranteed
/// closed interval. Disjoint path conditions contribute additively; the
/// final interval is clamped to `[0, 1]`.
pub fn volcomp_bounds(cs: &ConstraintSet, domain: &IntervalBox, cfg: &VolCompConfig) -> ProbBounds {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for pc in cs.pcs() {
        let b = bound_pc(pc, domain, cfg);
        lo += b.lo;
        hi += b.hi;
    }
    ProbBounds {
        lo: lo.clamp(0.0, 1.0),
        hi: hi.clamp(0.0, 1.0),
    }
}

fn bound_pc(
    pc: &qcoral_constraints::PathCondition,
    domain: &IntervalBox,
    cfg: &VolCompConfig,
) -> ProbBounds {
    let start = Instant::now();
    let contractor = Contractor::new(pc, domain.ndim());
    let mut lo = 0.0;
    let mut undecided = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Item {
        boxed: domain.clone(),
        weight: 1.0,
    });
    let mut splits = 0usize;

    while let Some(Item { mut boxed, weight }) = heap.pop() {
        // Contract: mass removed by contraction is proven solution-free.
        if !contractor.contract(&mut boxed) {
            continue;
        }
        let w = weight.min(boxed.relative_volume(domain));
        match contractor.certainty(&boxed) {
            Tri::True => {
                lo += w;
                continue;
            }
            Tri::False => continue,
            Tri::Unknown => {}
        }
        let out_of_budget = splits >= cfg.max_boxes_per_pc
            || boxed.max_width() <= cfg.min_width
            || boxed.ndim() == 0
            || start.elapsed() >= cfg.time_budget;
        if out_of_budget {
            undecided += w;
        } else {
            splits += 1;
            let (l, r) = boxed.bisect();
            let lw = l.relative_volume(domain);
            let rw = r.relative_volume(domain);
            heap.push(Item {
                boxed: l,
                weight: lw,
            });
            heap.push(Item {
                boxed: r,
                weight: rw,
            });
        }
    }
    ProbBounds {
        lo,
        hi: (lo + undecided).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_icp::domain_box;

    fn setup(src: &str) -> (ConstraintSet, IntervalBox) {
        let sys = parse_system(src).unwrap();
        let b = domain_box(&sys.domain);
        (sys.constraint_set, b)
    }

    #[test]
    fn box_constraint_is_exact() {
        let (cs, dom) = setup("var x in [0, 1]; pc x >= 0.25 && x <= 0.75;");
        let b = volcomp_bounds(&cs, &dom, &VolCompConfig::default());
        assert!(b.contains(0.5));
        assert!(b.width() < 1e-9, "width {}", b.width());
    }

    #[test]
    fn triangle_bounds_tighten() {
        let (cs, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x <= -y && y <= x;");
        let coarse = volcomp_bounds(
            &cs,
            &dom,
            &VolCompConfig {
                max_boxes_per_pc: 16,
                ..VolCompConfig::default()
            },
        );
        let fine = volcomp_bounds(
            &cs,
            &dom,
            &VolCompConfig {
                max_boxes_per_pc: 4_096,
                ..VolCompConfig::default()
            },
        );
        assert!(coarse.contains(0.25), "{coarse}");
        assert!(fine.contains(0.25), "{fine}");
        assert!(fine.width() < coarse.width());
        assert!(fine.width() < 0.05, "{fine}");
    }

    #[test]
    fn circle_bounds_contain_truth() {
        let (cs, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x*x + y*y <= 1;");
        let b = volcomp_bounds(&cs, &dom, &VolCompConfig::default());
        let exact = std::f64::consts::PI / 4.0;
        assert!(b.contains(exact), "{b} should contain {exact}");
        assert!(b.width() < 0.1, "{b}");
    }

    #[test]
    fn unsat_is_zero_zero() {
        let (cs, dom) = setup("var x in [0, 1]; pc x > 2;");
        let b = volcomp_bounds(&cs, &dom, &VolCompConfig::default());
        assert_eq!(b, ProbBounds { lo: 0.0, hi: 0.0 });
    }

    #[test]
    fn tautology_is_one_one() {
        let (cs, dom) = setup("var x in [0, 1]; pc x >= 0;");
        let b = volcomp_bounds(&cs, &dom, &VolCompConfig::default());
        assert!((b.lo - 1.0).abs() < 1e-9);
        assert!((b.hi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hard_transcendental_falls_back_to_wide_bounds() {
        // Highly oscillatory constraint with almost no budget: bounds stay
        // valid but wide (the VOL failure mode).
        let (cs, dom) = setup("var x in [-10, 10]; var y in [-10, 10]; pc sin(x * y) > 0.25;");
        let b = volcomp_bounds(
            &cs,
            &dom,
            &VolCompConfig {
                max_boxes_per_pc: 2,
                ..VolCompConfig::default()
            },
        );
        // True probability ≈ 0.42; the interval must contain it.
        assert!(b.contains(0.42), "{b}");
        assert!(b.width() > 0.3, "{b} should be wide under a tiny budget");
    }

    #[test]
    fn disjoint_sum_and_clamp() {
        let (cs, dom) = setup("var x in [0, 1]; pc x < 0.25; pc x > 0.5;");
        let b = volcomp_bounds(&cs, &dom, &VolCompConfig::default());
        assert!(b.contains(0.75), "{b}");
        // Strict inequalities leave min_width-sized undecided slivers at
        // the two boundaries.
        assert!(b.width() < 1e-3, "{b}");
    }
}
