//! Relational atoms, path conditions and constraint sets.
//!
//! A [`PathCondition`] is the conjunction of [`Atom`]s collected along one
//! symbolic-execution path; a [`ConstraintSet`] is the disjunction of the
//! path conditions reaching the target event (the paper's `PCT`). Path
//! conditions in a `ConstraintSet` are *pairwise disjoint by construction*
//! (paper §4.1) — this is what licenses the additive composition rule of
//! Theorem 1.

use std::fmt;
use std::sync::Arc;

use crate::{Domain, Expr, VarSet};

/// Relational comparison operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl RelOp {
    /// Source syntax for the operator.
    pub fn name(self) -> &'static str {
        match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
        }
    }

    /// The negated operator: `¬(a < b) ⇔ a >= b`, and so on.
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
        }
    }

    /// Applies the comparison to concrete values. Comparisons involving
    /// NaN are `false` (including `!=`), so undefined computations never
    /// count as hits.
    pub fn apply(self, a: f64, b: f64) -> bool {
        if a.is_nan() || b.is_nan() {
            return false;
        }
        match self {
            RelOp::Lt => a < b,
            RelOp::Le => a <= b,
            RelOp::Gt => a > b,
            RelOp::Ge => a >= b,
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single relational constraint `lhs ⋈ rhs`.
///
/// # Example
///
/// ```
/// use qcoral_constraints::{Atom, Expr, RelOp, VarId};
///
/// let a = Atom::new(Expr::var(VarId(0)).sin(), RelOp::Gt, Expr::constant(0.25));
/// assert!(a.holds(&[1.0]));
/// assert!(!a.holds(&[0.0]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    lhs: Arc<Expr>,
    op: RelOp,
    rhs: Arc<Expr>,
}

impl Atom {
    /// Creates the atom `lhs ⋈ rhs`.
    pub fn new(lhs: impl Into<Arc<Expr>>, op: RelOp, rhs: impl Into<Arc<Expr>>) -> Atom {
        Atom {
            lhs: lhs.into(),
            op,
            rhs: rhs.into(),
        }
    }

    /// Left-hand side.
    pub fn lhs(&self) -> &Arc<Expr> {
        &self.lhs
    }

    /// Relational operator.
    pub fn op(&self) -> RelOp {
        self.op
    }

    /// Right-hand side.
    pub fn rhs(&self) -> &Arc<Expr> {
        &self.rhs
    }

    /// The logically negated atom.
    pub fn negate(&self) -> Atom {
        Atom {
            lhs: Arc::clone(&self.lhs),
            op: self.op.negate(),
            rhs: Arc::clone(&self.rhs),
        }
    }

    /// Evaluates the atom on a concrete environment. NaN on either side
    /// yields `false`.
    pub fn holds(&self, env: &[f64]) -> bool {
        self.op.apply(self.lhs.eval(env), self.rhs.eval(env))
    }

    /// The normalized form `lhs - rhs ⋈ 0`, used by the ICP contractors.
    /// If `rhs` is already the constant `0`, the lhs is returned as-is.
    pub fn normalized(&self) -> (Arc<Expr>, RelOp) {
        if matches!(*self.rhs, Expr::Const(v) if v == 0.0) {
            return (Arc::clone(&self.lhs), self.op);
        }
        (
            Arc::new(Expr::Binary(
                crate::BinOp::Sub,
                Arc::clone(&self.lhs),
                Arc::clone(&self.rhs),
            )),
            self.op,
        )
    }

    /// Adds every variable occurring in the atom to `out`.
    pub fn collect_vars(&self, out: &mut VarSet) {
        self.lhs.collect_vars(out);
        self.rhs.collect_vars(out);
    }

    /// Largest variable index referenced plus one.
    pub fn var_bound(&self) -> usize {
        self.lhs.var_bound().max(self.rhs.var_bound())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A conjunction of atoms: one symbolic-execution path's constraints.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PathCondition {
    atoms: Vec<Atom>,
}

impl PathCondition {
    /// The empty (always-true) path condition.
    pub fn new() -> PathCondition {
        PathCondition::default()
    }

    /// Builds a path condition from a list of atoms.
    pub fn from_atoms(atoms: Vec<Atom>) -> PathCondition {
        PathCondition { atoms }
    }

    /// Conjoins one more atom.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// The conjoined atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` for the empty (always-true) condition.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates the conjunction on a concrete environment.
    pub fn holds(&self, env: &[f64]) -> bool {
        self.atoms.iter().all(|a| a.holds(env))
    }

    /// Adds every variable occurring in the condition to `out`.
    pub fn collect_vars(&self, out: &mut VarSet) {
        for a in &self.atoms {
            a.collect_vars(out);
        }
    }

    /// Largest variable index referenced plus one.
    pub fn var_bound(&self) -> usize {
        self.atoms.iter().map(Atom::var_bound).max().unwrap_or(0)
    }

    /// Rewrites every variable reference through `f` (see
    /// [`Expr::remap_vars`]).
    pub fn remap_vars(&self, f: &impl Fn(crate::VarId) -> crate::VarId) -> PathCondition {
        PathCondition {
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom::new(a.lhs().remap_vars(f), a.op(), a.rhs().remap_vars(f)))
                .collect(),
        }
    }

    /// The conjuncts that mention at least one variable in `vars` — the
    /// `extractRelatedConstraints` projection of the paper's Algorithm 2.
    pub fn project(&self, vars: &VarSet) -> PathCondition {
        let atoms = self
            .atoms
            .iter()
            .filter(|a| {
                let mut s = VarSet::new(vars.capacity());
                a.collect_vars(&mut s);
                s.intersects(vars)
            })
            .cloned()
            .collect();
        PathCondition { atoms }
    }
}

impl fmt::Display for PathCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for PathCondition {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> PathCondition {
        PathCondition {
            atoms: iter.into_iter().collect(),
        }
    }
}

/// A disjunction of pairwise-disjoint path conditions: the paper's `PCT`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ConstraintSet {
    pcs: Vec<PathCondition>,
}

impl ConstraintSet {
    /// The empty (always-false) constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Builds a set from a list of path conditions.
    ///
    /// The conditions are *assumed* pairwise disjoint, as guaranteed by
    /// symbolic execution; this is not checked (checking is undecidable in
    /// general). The composition rules in `qcoral` rely on it.
    pub fn from_pcs(pcs: Vec<PathCondition>) -> ConstraintSet {
        ConstraintSet { pcs }
    }

    /// Adds a path condition to the disjunction.
    pub fn push(&mut self, pc: PathCondition) {
        self.pcs.push(pc);
    }

    /// The disjuncts.
    pub fn pcs(&self) -> &[PathCondition] {
        &self.pcs
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Returns `true` for the empty (always-false) set.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Evaluates the disjunction on a concrete environment.
    pub fn holds(&self, env: &[f64]) -> bool {
        self.pcs.iter().any(|pc| pc.holds(env))
    }

    /// Total number of atoms across all path conditions (the paper's
    /// "Num. Ands" column in Table 3).
    pub fn atom_count(&self) -> usize {
        self.pcs.iter().map(PathCondition::len).sum()
    }

    /// Total number of arithmetic operation nodes across all expressions
    /// (the paper's "Num. Ar. Ops" column in Table 3).
    pub fn op_count(&self) -> usize {
        self.pcs
            .iter()
            .flat_map(|pc| pc.atoms())
            .map(|a| a.lhs().op_count() + a.rhs().op_count())
            .sum()
    }

    /// Largest variable index referenced plus one.
    pub fn var_bound(&self) -> usize {
        self.pcs
            .iter()
            .map(PathCondition::var_bound)
            .max()
            .unwrap_or(0)
    }

    /// Keeps only the first `n` path conditions (used by the Table 4
    /// protocol, which analyses the first 70% of PCs in bounded-DFS
    /// order).
    pub fn truncate(&mut self, n: usize) {
        self.pcs.truncate(n);
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pc in &self.pcs {
            writeln!(f, "pc {pc};")?;
        }
        Ok(())
    }
}

impl FromIterator<PathCondition> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = PathCondition>>(iter: T) -> ConstraintSet {
        ConstraintSet {
            pcs: iter.into_iter().collect(),
        }
    }
}

/// Wraps an expression for display with source-level variable names taken
/// from a [`Domain`].
pub fn pretty_expr<'a>(e: &'a Expr, domain: &'a Domain) -> PrettyExpr<'a> {
    PrettyExpr { e, domain }
}

/// Display adapter returned by [`pretty_expr`].
#[derive(Debug)]
pub struct PrettyExpr<'a> {
    e: &'a Expr,
    domain: &'a Domain,
}

impl fmt::Display for PrettyExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Reuse the canonical printer, then substitute `v{i}` tokens.
        // Expression variable tokens never collide with user identifiers
        // in canonical output, so a textual pass is safe and keeps the
        // precedence logic in one place.
        let raw = self.e.to_string();
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.char_indices().peekable();
        while let Some((i, ch)) = chars.next() {
            let prev_alnum = i
                .checked_sub(1)
                .and_then(|j| raw.as_bytes().get(j))
                .map(|b| b.is_ascii_alphanumeric() || *b == b'_')
                .unwrap_or(false);
            if ch == 'v' && !prev_alnum {
                let mut digits = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        digits.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if let Ok(idx) = digits.parse::<u32>() {
                    if !digits.is_empty() && (idx as usize) < self.domain.len() {
                        out.push_str(self.domain.name(crate::VarId(idx)));
                        continue;
                    }
                }
                out.push(ch);
                out.push_str(&digits);
            } else {
                out.push(ch);
            }
        }
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarId;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn y() -> Expr {
        Expr::var(VarId(1))
    }

    #[test]
    fn relop_negation_is_involutive() {
        for op in [
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
            RelOp::Eq,
            RelOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn relop_nan_is_false() {
        for op in [
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
            RelOp::Eq,
            RelOp::Ne,
        ] {
            assert!(!op.apply(f64::NAN, 0.0));
            assert!(!op.apply(0.0, f64::NAN));
        }
    }

    #[test]
    fn atom_holds_and_negate() {
        let a = Atom::new(x(), RelOp::Lt, y());
        assert!(a.holds(&[0.0, 1.0]));
        assert!(!a.holds(&[1.0, 0.0]));
        let n = a.negate();
        assert!(n.holds(&[1.0, 0.0]));
        assert!(n.holds(&[1.0, 1.0]));
        // Exactly one of atom/negation holds on non-NaN inputs.
        assert!(a.holds(&[0.5, 0.6]) != n.holds(&[0.5, 0.6]));
    }

    #[test]
    fn atom_nan_semantics() {
        let a = Atom::new(x().sqrt(), RelOp::Ge, Expr::constant(0.0));
        assert!(a.holds(&[4.0]));
        assert!(!a.holds(&[-4.0])); // sqrt(-4) = NaN → false
        assert!(!a.negate().holds(&[-4.0])); // negation is also false
    }

    #[test]
    fn normalization() {
        let a = Atom::new(x(), RelOp::Le, Expr::constant(3.0));
        let (e, op) = a.normalized();
        assert_eq!(op, RelOp::Le);
        assert_eq!(e.eval(&[5.0]), 2.0);
        let already = Atom::new(x(), RelOp::Gt, Expr::constant(0.0));
        let (e2, _) = already.normalized();
        assert_eq!(e2.eval(&[5.0]), 5.0);
    }

    #[test]
    fn pc_holds_and_project() {
        let pc = PathCondition::from_atoms(vec![
            Atom::new(x(), RelOp::Gt, Expr::constant(0.0)),
            Atom::new(y(), RelOp::Lt, Expr::constant(1.0)),
            Atom::new(x().add(y()), RelOp::Le, Expr::constant(1.0)),
        ]);
        assert!(pc.holds(&[0.4, 0.5]));
        assert!(!pc.holds(&[0.4, 2.0]));
        let mut xs = VarSet::new(2);
        xs.insert(VarId(0));
        let proj = pc.project(&xs);
        assert_eq!(proj.len(), 2); // x > 0 and x + y <= 1 both mention x
    }

    #[test]
    fn constraint_set_holds_any() {
        let cs = ConstraintSet::from_pcs(vec![
            PathCondition::from_atoms(vec![Atom::new(x(), RelOp::Gt, Expr::constant(0.5))]),
            PathCondition::from_atoms(vec![
                Atom::new(x(), RelOp::Le, Expr::constant(0.5)),
                Atom::new(y(), RelOp::Gt, Expr::constant(0.0)),
            ]),
        ]);
        assert!(cs.holds(&[0.6, -1.0]));
        assert!(cs.holds(&[0.1, 0.5]));
        assert!(!cs.holds(&[0.1, -0.5]));
        assert_eq!(cs.atom_count(), 3);
    }

    #[test]
    fn op_count_counts_internal_nodes() {
        // sin(x*y) > 0.25 : lhs has sin + mul = 2 operation nodes
        let cs = ConstraintSet::from_pcs(vec![PathCondition::from_atoms(vec![Atom::new(
            x().mul(y()).sin(),
            RelOp::Gt,
            Expr::constant(0.25),
        )])]);
        assert_eq!(cs.op_count(), 2);
    }

    #[test]
    fn display_forms() {
        let a = Atom::new(x(), RelOp::Le, Expr::constant(9000.0));
        assert_eq!(a.to_string(), "v0 <= 9000");
        let pc = PathCondition::from_atoms(vec![a.clone(), Atom::new(y(), RelOp::Gt, x())]);
        assert_eq!(pc.to_string(), "v0 <= 9000 && v1 > v0");
        assert_eq!(PathCondition::new().to_string(), "true");
    }

    #[test]
    fn pretty_expr_substitutes_names() {
        let mut d = Domain::new();
        d.declare("headFlap", -10.0, 10.0).unwrap();
        d.declare("tailFlap", -10.0, 10.0).unwrap();
        let e = x().mul(y()).sin();
        assert_eq!(pretty_expr(&e, &d).to_string(), "sin(headFlap * tailFlap)");
    }
}
