//! Runtime x86-64 code generation for the columnar hot path.
//!
//! [`crate::bulk::BulkTape`] already amortizes dispatch across
//! [`LANES`](crate::bulk::LANES)-wide slabs, but every instruction still pays an interpreter
//! `match`, slice bounds checks and a loop the backend must re-discover
//! is vectorizable. This module compiles the *same* register-allocated
//! instruction stream — schedule, register assignment and per-atom
//! early-exit points included — into one native kernel per predicate
//! (the `jitfive` technique of implicit-surface engines such as
//! `fidget`, applied to path-condition predicates).
//!
//! # Bit-identity contract
//!
//! JIT results are **bit-for-bit** those of the interpreter, which the
//! determinism and factor-store layers rely on:
//!
//! * `Neg`/`Abs`/`Sqrt`/`Add`/`Sub`/`Mul`/`Div` are emitted as SSE2
//!   packed-double instructions (`xorpd`/`andpd` sign-mask tricks,
//!   `sqrtpd`, `addpd`, …) — IEEE-754-exact, operand order preserved, so
//!   they cannot differ from the scalar ops.
//! * `Min`/`Max` mirror, packed, the exact instruction sequence rustc
//!   emits for `f64::min`/`f64::max` at runtime (`a.is_nan() ? b :
//!   minpd(b, a)` as a branch-free `cmpunordpd`/`andpd`/`andnpd`/`orpd`
//!   blend): ties favor the first operand, a NaN on either side yields
//!   the other operand's bits verbatim.
//! * Transcendentals (`Exp`/`Ln`/`Sin`/`Cos`/`Tan`/`Asin`/`Acos`/
//!   `Atan`/`Pow`/`Atan2`) are not re-implemented: the kernel makes an
//!   `extern "C"` call per lane into the *same* Rust `f64` routines the
//!   interpreter uses ([`UnOp::apply`](crate::UnOp::apply)/[`BinOp::apply`](crate::BinOp::apply)), so equality
//!   holds by construction.
//! * Compares produce per-atom lane masks with the interpreter's
//!   NaN-is-miss semantics (including `!=`, which is `ordered ∧
//!   not-equal`), AND into the running hit mask, and early-exit the
//!   kernel when no lane can still satisfy the conjunction.
//!
//! # Kernel ABI
//!
//! Each predicate compiles to one function with the SysV signature
//!
//! ```text
//! extern "C" fn(regs: *mut f64, cols: *const *const f64, mask: *mut u64)
//! ```
//!
//! where `regs` is a contiguous register file (`num_registers` slabs of
//! [`LANES`](crate::bulk::LANES) `f64`s; register `r` lives at byte offset `r * 1024`),
//! `cols` holds one pre-offset column pointer per input variable, and
//! the 128-bit hit mask is written to `mask[0]` (lanes 0–63) and
//! `mask[1]` (lanes 64–127). Kernels process exactly one full slab;
//! ragged tails stay on the (bit-identical) interpreter, which keeps
//! variable-width handling out of the emitter entirely. All live state
//! (register-file base, column table, running mask, loop counters) sits
//! in callee-saved GPRs so the transcendental callbacks cannot clobber
//! it, and the stack is kept 16-byte aligned at every call site.
//!
//! # Fallback rules
//!
//! Code pages come from `mmap`/`mprotect` declared directly (the same
//! no-external-deps FFI pattern as the `signal(2)` handler in
//! `qcoral-serviced`), mapped W^X: filled read-write, then flipped to
//! read-execute. On non-x86_64 / non-Linux targets, or when
//! [`jit_available`] reports the CPU unsuitable at runtime, or if the
//! kernel mapping fails, [`JitTape::compile`] returns `None` and callers
//! keep the `BulkTape` interpreter — same results, interpreter speed.
//! The [`portable`] stub (which *is* `JitTape` on unsupported targets)
//! compiles everywhere so the fallback path is testable from x86_64 CI.

use crate::bulk::BulkTape;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use native::JitTape;
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub use portable::JitTape;

/// Whether this process can execute JIT-compiled kernels: x86-64 Linux
/// with SSE2 (checked at runtime, not assumed from the compile target).
/// When `false`, [`JitTape::compile`] always returns `None`.
pub fn jit_available() -> bool {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        return std::arch::is_x86_feature_detected!("sse2");
    }
    #[allow(unreachable_code)]
    false
}

/// Reusable per-thread scratch for kernel invocation: the contiguous
/// lane-register file and the column-pointer table. Grows to the largest
/// register file it has served, then is allocation-free. Holds raw
/// pointers between calls only transiently (the table is rebuilt on
/// every slab), but is still `!Send` — use one per thread.
#[derive(Debug, Default)]
pub struct JitScratch {
    regs: Vec<f64>,
    ptrs: Vec<*const f64>,
}

impl JitScratch {
    /// An empty scratch (storage is allocated on first use).
    pub fn new() -> JitScratch {
        JitScratch::default()
    }
}

/// Always-fallback stand-in for unsupported targets, compiled (and unit
/// tested) on every target. On non-x86_64 / non-Linux builds this *is*
/// [`crate::jit::JitTape`]: an uninhabited type whose `compile` returns
/// `None`, so callers statically keep the interpreter path.
pub mod portable {
    use super::{BulkTape, JitScratch};

    /// Uninhabited [`super::JitTape`] stand-in: no kernel can exist on
    /// an unsupported target, and the type system knows it.
    #[derive(Debug)]
    pub enum JitTape {}

    impl JitTape {
        /// Always `None`: native code generation is unavailable.
        pub fn compile(_tape: &BulkTape) -> Option<JitTape> {
            None
        }

        /// Unreachable (`JitTape` is uninhabited).
        pub fn count_hits(&self, _tail: &BulkTape, _cols: &[Vec<f64>], _n: usize) -> u64 {
            match *self {}
        }

        /// Unreachable (`JitTape` is uninhabited).
        pub fn hit_mask_slab(&self, _cols: &[Vec<f64>], _off: usize, _s: &mut JitScratch) -> u128 {
            match *self {}
        }

        /// Unreachable (`JitTape` is uninhabited).
        pub fn code_len(&self) -> usize {
            match *self {}
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod native {
    use std::cell::RefCell;

    use super::{jit_available, JitScratch};
    use crate::bulk::{BulkScratch, BulkTape, Inst, LANES};
    use crate::{BinOp, RelOp, UnOp};

    // ---------------------------------------------------------------
    // Executable pages: direct mmap/mprotect/munmap FFI (no libc crate
    // in the workspace — same pattern as the signal(2) declaration in
    // qcoral-serviced). Constants are the Linux x86-64 ABI values.
    // ---------------------------------------------------------------

    mod sys {
        use std::ffi::c_void;

        pub const PROT_READ: i32 = 0x1;
        pub const PROT_WRITE: i32 = 0x2;
        pub const PROT_EXEC: i32 = 0x4;
        pub const MAP_PRIVATE: i32 = 0x02;
        pub const MAP_ANONYMOUS: i32 = 0x20;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut c_void;
            pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
            pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        }
    }

    /// An owned executable mapping, built W^X: the page is filled while
    /// read-write, then flipped to read-execute and never writable
    /// again. Unmapped on drop.
    #[derive(Debug)]
    struct ExecBuf {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable after construction (RX, never
    // written again) and owned until drop; sharing read/execute access
    // across threads is sound.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        fn new(code: &[u8]) -> Option<ExecBuf> {
            if code.is_empty() {
                return None;
            }
            // SAFETY: anonymous private mapping of a length we own;
            // copy stays in bounds; mprotect flips our own pages.
            unsafe {
                let p = sys::mmap(
                    std::ptr::null_mut(),
                    code.len(),
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                    -1,
                    0,
                );
                if p.is_null() || p as isize == -1 {
                    return None;
                }
                std::ptr::copy_nonoverlapping(code.as_ptr(), p as *mut u8, code.len());
                if sys::mprotect(p, code.len(), sys::PROT_READ | sys::PROT_EXEC) != 0 {
                    sys::munmap(p, code.len());
                    return None;
                }
                Some(ExecBuf {
                    ptr: p as *mut u8,
                    len: code.len(),
                })
            }
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            // SAFETY: unmapping the mapping this struct owns.
            unsafe {
                sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }

    // ---------------------------------------------------------------
    // Transcendental callbacks: the exact routines the interpreter
    // applies per lane, re-exported with the C ABI so emitted code can
    // call them. Bit-identity is by construction — same function, same
    // argument order.
    // ---------------------------------------------------------------

    extern "C" fn cb_exp(x: f64) -> f64 {
        x.exp()
    }
    extern "C" fn cb_ln(x: f64) -> f64 {
        x.ln()
    }
    extern "C" fn cb_sin(x: f64) -> f64 {
        x.sin()
    }
    extern "C" fn cb_cos(x: f64) -> f64 {
        x.cos()
    }
    extern "C" fn cb_tan(x: f64) -> f64 {
        x.tan()
    }
    extern "C" fn cb_asin(x: f64) -> f64 {
        x.asin()
    }
    extern "C" fn cb_acos(x: f64) -> f64 {
        x.acos()
    }
    extern "C" fn cb_atan(x: f64) -> f64 {
        x.atan()
    }
    extern "C" fn cb_pow(a: f64, b: f64) -> f64 {
        a.powf(b)
    }
    extern "C" fn cb_atan2(a: f64, b: f64) -> f64 {
        a.atan2(b)
    }

    /// Callback address for a transcendental unary, `None` for the ops
    /// the emitter lowers to SSE2 directly.
    fn un_callback(op: UnOp) -> Option<u64> {
        let f: extern "C" fn(f64) -> f64 = match op {
            UnOp::Neg | UnOp::Abs | UnOp::Sqrt => return None,
            UnOp::Exp => cb_exp,
            UnOp::Ln => cb_ln,
            UnOp::Sin => cb_sin,
            UnOp::Cos => cb_cos,
            UnOp::Tan => cb_tan,
            UnOp::Asin => cb_asin,
            UnOp::Acos => cb_acos,
            UnOp::Atan => cb_atan,
        };
        Some(f as usize as u64)
    }

    /// Callback address for a transcendental binary, `None` for the ops
    /// the emitter lowers to SSE2 directly.
    fn bin_callback(op: BinOp) -> Option<u64> {
        let f: extern "C" fn(f64, f64) -> f64 = match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max => {
                return None
            }
            BinOp::Pow => cb_pow,
            BinOp::Atan2 => cb_atan2,
        };
        Some(f as usize as u64)
    }

    // ---------------------------------------------------------------
    // Instruction encoder: just enough x86-64 to emit the kernels.
    // REX/ModRM/SIB encoding with disp32 memory operands throughout.
    // ---------------------------------------------------------------

    const RAX: u8 = 0;
    const RCX: u8 = 1;
    const RDX: u8 = 2;
    const RBX: u8 = 3;
    const RSP: u8 = 4;
    const RBP: u8 = 5;
    const RSI: u8 = 6;
    const RDI: u8 = 7;
    const R12: u8 = 12;
    const R13: u8 = 13;
    const R14: u8 = 14;
    const R15: u8 = 15;

    const XMM0: u8 = 0;
    const XMM1: u8 = 1;
    const XMM2: u8 = 2;
    const XMM3: u8 = 3;

    /// `0x66` operand-size prefix selecting the packed-double forms.
    const P66: u8 = 0x66;
    /// `0xF2` prefix selecting the scalar-double (`movsd`) forms.
    const PF2: u8 = 0xF2;

    // 0F-escaped SSE2 opcodes.
    const MOV_LD: u8 = 0x10; // movupd / movsd load
    const MOV_ST: u8 = 0x11; // movupd / movsd store
    const UNPCKLPD: u8 = 0x14;
    const MOVAPD: u8 = 0x28;
    const SQRTPD: u8 = 0x51;
    const ANDPD: u8 = 0x54;
    const ANDNPD: u8 = 0x55;
    const ORPD: u8 = 0x56;
    const XORPD: u8 = 0x57;
    const ADDPD: u8 = 0x58;
    const MULPD: u8 = 0x59;
    const SUBPD: u8 = 0x5C;
    const MINPD: u8 = 0x5D;
    const DIVPD: u8 = 0x5E;
    const MAXPD: u8 = 0x5F;

    // cmppd immediate predicates.
    const CMP_EQ: u8 = 0;
    const CMP_LT: u8 = 1;
    const CMP_LE: u8 = 2;
    const CMP_UNORD: u8 = 3;
    const CMP_NEQ: u8 = 4; // true on unordered too (NEQ_UQ)
    const CMP_ORD: u8 = 7;

    // Jcc condition codes (low nibble of the 0F 8x opcode).
    const CC_Z: u8 = 0x4;
    const CC_NZ: u8 = 0x5;

    /// Bytes per lane register slab: [`LANES`] `f64`s.
    const SLAB: i32 = (LANES * 8) as i32;

    #[derive(Default)]
    struct Asm {
        code: Vec<u8>,
    }

    impl Asm {
        fn pos(&self) -> usize {
            self.code.len()
        }

        fn b(&mut self, v: u8) {
            self.code.push(v);
        }

        fn i32le(&mut self, v: i32) {
            self.code.extend_from_slice(&v.to_le_bytes());
        }

        /// REX prefix for `reg` (ModRM.reg), optional SIB index, and
        /// `base` (ModRM.rm / SIB.base); omitted when all bits are 0.
        fn rex(&mut self, w: bool, reg: u8, index: Option<u8>, base: u8) {
            let mut v = 0x40u8;
            if w {
                v |= 8;
            }
            if reg >= 8 {
                v |= 4;
            }
            if index.is_some_and(|i| i >= 8) {
                v |= 2;
            }
            if base >= 8 {
                v |= 1;
            }
            if v != 0x40 {
                self.b(v);
            }
        }

        /// Register-direct ModRM byte.
        fn modrm_reg(&mut self, reg: u8, rm: u8) {
            self.b(0xC0 | ((reg & 7) << 3) | (rm & 7));
        }

        /// Memory operand `[base + index*1 + disp32]` (mod = 10). A SIB
        /// byte is emitted when an index is present or the base encodes
        /// as RSP/R12.
        fn mem(&mut self, reg: u8, base: u8, index: Option<u8>, disp: i32) {
            let reg7 = (reg & 7) << 3;
            if index.is_none() && base & 7 != 4 {
                self.b(0x80 | reg7 | (base & 7));
            } else {
                debug_assert!(index.is_none_or(|i| i & 7 != 4), "rsp cannot index");
                self.b(0x80 | reg7 | 0b100);
                let idx = index.map_or(0b100, |i| i & 7);
                self.b((idx << 3) | (base & 7));
            }
            self.i32le(disp);
        }

        fn push_r(&mut self, r: u8) {
            self.rex(false, 0, None, r);
            self.b(0x50 + (r & 7));
        }

        fn pop_r(&mut self, r: u8) {
            self.rex(false, 0, None, r);
            self.b(0x58 + (r & 7));
        }

        /// `mov dst, src` (64-bit).
        fn mov_rr(&mut self, dst: u8, src: u8) {
            self.rex(true, src, None, dst);
            self.b(0x89);
            self.modrm_reg(src, dst);
        }

        /// `mov r64, imm64`.
        fn mov_ri64(&mut self, r: u8, imm: u64) {
            self.rex(true, 0, None, r);
            self.b(0xB8 + (r & 7));
            self.code.extend_from_slice(&imm.to_le_bytes());
        }

        /// `mov r64, imm32` (sign-extended).
        fn mov_ri32(&mut self, r: u8, imm: i32) {
            self.rex(true, 0, None, r);
            self.b(0xC7);
            self.modrm_reg(0, r);
            self.i32le(imm);
        }

        /// `mov r64, [base + index + disp32]`.
        fn mov_r_mem(&mut self, dst: u8, base: u8, index: Option<u8>, disp: i32) {
            self.rex(true, dst, index, base);
            self.b(0x8B);
            self.mem(dst, base, index, disp);
        }

        /// `mov [base + disp32], src` (64-bit store).
        fn mov_mem_r(&mut self, base: u8, disp: i32, src: u8) {
            self.rex(true, src, None, base);
            self.b(0x89);
            self.mem(src, base, None, disp);
        }

        /// `xor dst32, src32` (zero-extends; the idiomatic zeroing).
        fn xor_rr32(&mut self, dst: u8, src: u8) {
            self.rex(false, src, None, dst);
            self.b(0x31);
            self.modrm_reg(src, dst);
        }

        /// Group-1 ALU op with an 8-bit immediate: `ext` 0 = add,
        /// 5 = sub.
        fn alu_ri8(&mut self, ext: u8, r: u8, imm: i8) {
            self.rex(true, 0, None, r);
            self.b(0x83);
            self.modrm_reg(ext, r);
            self.b(imm as u8);
        }

        /// `cmp r64, imm32`.
        fn cmp_ri32(&mut self, r: u8, imm: i32) {
            self.rex(true, 0, None, r);
            self.b(0x81);
            self.modrm_reg(7, r);
            self.i32le(imm);
        }

        /// `shl r64, 2`.
        fn shl2(&mut self, r: u8) {
            self.rex(true, 0, None, r);
            self.b(0xC1);
            self.modrm_reg(4, r);
            self.b(2);
        }

        /// `and dst, src` (64-bit).
        fn and_rr(&mut self, dst: u8, src: u8) {
            self.rex(true, src, None, dst);
            self.b(0x21);
            self.modrm_reg(src, dst);
        }

        /// `or dst, src` (64-bit).
        fn or_rr(&mut self, dst: u8, src: u8) {
            self.rex(true, src, None, dst);
            self.b(0x09);
            self.modrm_reg(src, dst);
        }

        /// `call r64` (indirect).
        fn call_r(&mut self, r: u8) {
            self.rex(false, 0, None, r);
            self.b(0xFF);
            self.modrm_reg(2, r);
        }

        fn ret(&mut self) {
            self.b(0xC3);
        }

        /// `jcc rel32` to a known earlier position.
        fn jcc_back(&mut self, cc: u8, target: usize) {
            self.b(0x0F);
            self.b(0x80 | cc);
            let rel = target as i64 - (self.pos() as i64 + 4);
            self.i32le(rel as i32);
        }

        /// `jcc rel32` forward; returns the patch site for
        /// [`Asm::patch_fwd`].
        fn jcc_fwd(&mut self, cc: u8) -> usize {
            self.b(0x0F);
            self.b(0x80 | cc);
            let at = self.pos();
            self.i32le(0);
            at
        }

        /// Points a forward jump recorded by [`Asm::jcc_fwd`] at the
        /// current position.
        fn patch_fwd(&mut self, at: usize) {
            let rel = (self.pos() as i64 - (at as i64 + 4)) as i32;
            self.code[at..at + 4].copy_from_slice(&rel.to_le_bytes());
        }

        /// SSE op, register-register form (`dst` is ModRM.reg).
        fn sse_rr(&mut self, pfx: u8, op: u8, dst: u8, src: u8) {
            self.b(pfx);
            self.rex(false, dst, None, src);
            self.b(0x0F);
            self.b(op);
            self.modrm_reg(dst, src);
        }

        /// SSE op, register-memory form (`[base + index + disp32]`).
        fn sse_rm(&mut self, pfx: u8, op: u8, x: u8, base: u8, index: Option<u8>, disp: i32) {
            self.b(pfx);
            self.rex(false, x, index, base);
            self.b(0x0F);
            self.b(op);
            self.mem(x, base, index, disp);
        }

        /// `cmppd dst, src, pred`.
        fn cmppd(&mut self, dst: u8, src: u8, pred: u8) {
            self.sse_rr(P66, 0xC2, dst, src);
            self.b(pred);
        }

        /// `movmskpd r32, xmm`: the two lane sign bits.
        fn movmskpd(&mut self, gpr: u8, x: u8) {
            self.b(P66);
            self.rex(false, gpr, None, x);
            self.b(0x0F);
            self.b(0x50);
            self.modrm_reg(gpr, x);
        }

        /// `movq xmm, r64`.
        fn movq_xr(&mut self, x: u8, gpr: u8) {
            self.b(P66);
            self.rex(true, x, None, gpr);
            self.b(0x0F);
            self.b(0x6E);
            self.modrm_reg(x, gpr);
        }

        /// Broadcasts a 64-bit pattern into both lanes of `x`
        /// (clobbers RAX).
        fn bcast(&mut self, x: u8, bits: u64) {
            self.mov_ri64(RAX, bits);
            self.movq_xr(x, RAX);
            self.sse_rr(P66, UNPCKLPD, x, x);
        }

        /// Emits `body` inside a 16-bytes-per-step loop over one slab,
        /// with RCX as the byte cursor (0, 16, …, SLAB-16). The body
        /// must not clobber RCX.
        fn vec_loop(&mut self, body: impl FnOnce(&mut Asm)) {
            self.xor_rr32(RCX, RCX);
            let top = self.pos();
            body(self);
            self.alu_ri8(0, RCX, 16);
            self.cmp_ri32(RCX, SLAB);
            self.jcc_back(CC_NZ, top);
        }

        /// Emits a lane-at-a-time loop that loads `srcs` (slab byte
        /// offsets) into XMM0[, XMM1], calls `addr` with the C ABI, and
        /// stores XMM0 to `dst`. RBP is the byte cursor (callee-saved,
        /// so it survives the call); the callback may clobber any
        /// caller-saved register, so the target address is reloaded
        /// into RAX every iteration.
        fn call_loop(&mut self, addr: u64, srcs: &[i32], dst: i32) {
            self.xor_rr32(RBP, RBP);
            let top = self.pos();
            for (i, &s) in srcs.iter().enumerate() {
                self.sse_rm(PF2, MOV_LD, i as u8, RBX, Some(RBP), s);
            }
            self.mov_ri64(RAX, addr);
            self.call_r(RAX);
            self.sse_rm(PF2, MOV_ST, XMM0, RBX, Some(RBP), dst);
            self.alu_ri8(0, RBP, 8);
            self.cmp_ri32(RBP, SLAB);
            self.jcc_back(CC_NZ, top);
        }
    }

    // ---------------------------------------------------------------
    // The kernel emitter.
    // ---------------------------------------------------------------

    /// Register assignment inside a kernel (all callee-saved, so the
    /// transcendental callbacks preserve them):
    ///
    /// | reg | holds                                   |
    /// |-----|------------------------------------------|
    /// | rbx | register-file base (`regs` argument)     |
    /// | r13 | column-pointer table (`cols` argument)   |
    /// | r12 | mask out-pointer                         |
    /// | r14 | running hit mask, lanes 0–63             |
    /// | r15 | running hit mask, lanes 64–127           |
    /// | rbp | lane cursor of callback loops            |
    ///
    /// Caller-saved rax/rcx/rdx and xmm0–xmm3 are transient.
    fn emit_kernel(tape: &BulkTape) -> Option<Vec<u8>> {
        // Every slab offset must encode as disp32.
        let file_bytes = tape.num_registers().checked_mul(LANES * 8)?;
        if file_bytes > i32::MAX as usize || tape.num_vars() * 8 > i32::MAX as usize {
            return None;
        }
        let slab = |r: u32| (r as i32) * SLAB;

        let mut a = Asm::default();

        // Prologue: 6 pushes keep rsp ≡ 8 (mod 16) as at entry; one
        // 8-byte adjustment aligns every later call site.
        for r in [RBX, RBP, R12, R13, R14, R15] {
            a.push_r(r);
        }
        a.alu_ri8(5, RSP, 8);
        a.mov_rr(RBX, RDI);
        a.mov_rr(R13, RSI);
        a.mov_rr(R12, RDX);
        a.mov_ri32(R14, -1);
        a.mov_ri32(R15, -1);

        let mut exits: Vec<usize> = Vec::new();
        for inst in tape.insts() {
            match *inst {
                Inst::Const { dst, value } => {
                    let d = slab(dst);
                    a.bcast(XMM0, value.to_bits());
                    a.vec_loop(|a| a.sse_rm(P66, MOV_ST, XMM0, RBX, Some(RCX), d));
                }
                Inst::Var { dst, var } => {
                    let d = slab(dst);
                    a.mov_r_mem(RAX, R13, None, var as i32 * 8);
                    a.vec_loop(|a| {
                        a.sse_rm(P66, MOV_LD, XMM0, RAX, Some(RCX), 0);
                        a.sse_rm(P66, MOV_ST, XMM0, RBX, Some(RCX), d);
                    });
                }
                Inst::Un { op, dst, src } => {
                    let (d, s) = (slab(dst), slab(src));
                    if let Some(addr) = un_callback(op) {
                        a.call_loop(addr, &[s], d);
                        continue;
                    }
                    match op {
                        // Sign-bit tricks: exactly how rustc lowers
                        // `-x` and `x.abs()`.
                        UnOp::Neg | UnOp::Abs => {
                            let (bits, alu) = if op == UnOp::Neg {
                                (0x8000_0000_0000_0000u64, XORPD)
                            } else {
                                (0x7fff_ffff_ffff_ffffu64, ANDPD)
                            };
                            a.bcast(XMM1, bits);
                            a.vec_loop(|a| {
                                a.sse_rm(P66, MOV_LD, XMM0, RBX, Some(RCX), s);
                                a.sse_rr(P66, alu, XMM0, XMM1);
                                a.sse_rm(P66, MOV_ST, XMM0, RBX, Some(RCX), d);
                            });
                        }
                        UnOp::Sqrt => a.vec_loop(|a| {
                            a.sse_rm(P66, MOV_LD, XMM0, RBX, Some(RCX), s);
                            a.sse_rr(P66, SQRTPD, XMM0, XMM0);
                            a.sse_rm(P66, MOV_ST, XMM0, RBX, Some(RCX), d);
                        }),
                        _ => unreachable!("transcendental handled by callback"),
                    }
                }
                Inst::Bin {
                    op,
                    dst,
                    a: ra,
                    b: rb,
                } => {
                    let (d, sa, sb) = (slab(dst), slab(ra), slab(rb));
                    if let Some(addr) = bin_callback(op) {
                        a.call_loop(addr, &[sa, sb], d);
                        continue;
                    }
                    match op {
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                            let alu = match op {
                                BinOp::Add => ADDPD,
                                BinOp::Sub => SUBPD,
                                BinOp::Mul => MULPD,
                                _ => DIVPD,
                            };
                            a.vec_loop(|a| {
                                a.sse_rm(P66, MOV_LD, XMM0, RBX, Some(RCX), sa);
                                a.sse_rm(P66, MOV_LD, XMM1, RBX, Some(RCX), sb);
                                a.sse_rr(P66, alu, XMM0, XMM1);
                                a.sse_rm(P66, MOV_ST, XMM0, RBX, Some(RCX), d);
                            });
                        }
                        // The packed mirror of rustc's runtime lowering
                        // of `a.min(b)` / `a.max(b)`:
                        //   isnan(a) ? b : min/maxpd(b, a)
                        // as a branch-free blend. min/maxpd(b, a)
                        // returns the *source* operand (a) on ties and
                        // when b is NaN, so ties favor a and either
                        // NaN selects the other side's bits verbatim —
                        // the same function the interpreter computes.
                        BinOp::Min | BinOp::Max => {
                            let alu = if op == BinOp::Min { MINPD } else { MAXPD };
                            a.vec_loop(|a| {
                                a.sse_rm(P66, MOV_LD, XMM0, RBX, Some(RCX), sa);
                                a.sse_rm(P66, MOV_LD, XMM1, RBX, Some(RCX), sb);
                                a.sse_rr(P66, MOVAPD, XMM2, XMM0);
                                a.cmppd(XMM2, XMM2, CMP_UNORD); // a-is-NaN mask
                                a.sse_rr(P66, MOVAPD, XMM3, XMM2);
                                a.sse_rr(P66, ANDPD, XMM3, XMM1); // mask & b
                                a.sse_rr(P66, alu, XMM1, XMM0); // min/max(b, a)
                                a.sse_rr(P66, ANDNPD, XMM2, XMM1); // !mask & result
                                a.sse_rr(P66, ORPD, XMM2, XMM3);
                                a.sse_rm(P66, MOV_ST, XMM2, RBX, Some(RCX), d);
                            });
                        }
                        _ => unreachable!("transcendental handled by callback"),
                    }
                }
                Inst::Cmp { op, a: ra, b: rb } => {
                    emit_cmp(&mut a, op, slab(ra), slab(rb));
                    // All-false early exit: the interpreter's per-atom
                    // check, one branch per atom here.
                    a.mov_rr(RAX, R14);
                    a.or_rr(RAX, R15);
                    exits.push(a.jcc_fwd(CC_Z));
                }
            }
        }

        for at in exits {
            a.patch_fwd(at);
        }
        a.mov_mem_r(R12, 0, R14);
        a.mov_mem_r(R12, 8, R15);
        a.alu_ri8(0, RSP, 8);
        for r in [R15, R14, R13, R12, RBP, RBX] {
            a.pop_r(r);
        }
        a.ret();
        Some(a.code)
    }

    /// Emits one atom comparison: builds the 128-lane result mask two
    /// lanes at a time via `movmskpd` and ANDs it into r14/r15. Lanes
    /// are walked high-to-low within each 64-lane half so `shl 2 / or`
    /// accumulation lands lane `i` on bit `i`, matching the
    /// interpreter's mask layout. NaN on either side misses: `< <= ==`
    /// (and the swapped-operand `> >=`) are false on unordered lanes by
    /// predicate definition, `!=` is `ordered ∧ neq`.
    fn emit_cmp(a: &mut Asm, op: RelOp, sa: i32, sb: i32) {
        for (half, acc) in [(0i32, R14), (1i32, R15)] {
            a.xor_rr32(RAX, RAX);
            a.mov_ri32(RCX, (half + 1) * (SLAB / 2));
            let top = a.pos();
            a.alu_ri8(5, RCX, 16);
            a.sse_rm(P66, MOV_LD, XMM0, RBX, Some(RCX), sa);
            a.sse_rm(P66, MOV_LD, XMM1, RBX, Some(RCX), sb);
            let res = match op {
                RelOp::Lt => {
                    a.cmppd(XMM0, XMM1, CMP_LT);
                    XMM0
                }
                RelOp::Le => {
                    a.cmppd(XMM0, XMM1, CMP_LE);
                    XMM0
                }
                // No greater-than predicate in SSE2: swap operands.
                RelOp::Gt => {
                    a.cmppd(XMM1, XMM0, CMP_LT);
                    XMM1
                }
                RelOp::Ge => {
                    a.cmppd(XMM1, XMM0, CMP_LE);
                    XMM1
                }
                RelOp::Eq => {
                    a.cmppd(XMM0, XMM1, CMP_EQ);
                    XMM0
                }
                // cmpneqpd is true on unordered lanes, so mask it with
                // cmpordpd to get the NaN-rejecting `!=`.
                RelOp::Ne => {
                    a.sse_rr(P66, MOVAPD, XMM2, XMM0);
                    a.cmppd(XMM2, XMM1, CMP_NEQ);
                    a.cmppd(XMM0, XMM1, CMP_ORD);
                    a.sse_rr(P66, ANDPD, XMM0, XMM2);
                    XMM0
                }
            };
            a.movmskpd(RDX, res);
            a.shl2(RAX);
            a.or_rr(RAX, RDX);
            a.cmp_ri32(RCX, half * (SLAB / 2));
            a.jcc_back(CC_NZ, top);
            a.and_rr(acc, RAX);
        }
    }

    type Kernel = unsafe extern "C" fn(*mut f64, *const *const f64, *mut u64);

    /// A predicate compiled to native x86-64 code. Evaluates one full
    /// [`LANES`]-wide slab per call, bit-identical to
    /// [`BulkTape::hit_mask`] over the same slab; ragged tails are
    /// delegated back to the interpreter by [`JitTape::count_hits`].
    #[derive(Debug)]
    pub struct JitTape {
        buf: ExecBuf,
        nregs: usize,
        nvars: usize,
    }

    impl JitTape {
        /// Compiles the bulk tape's instruction stream to a native
        /// kernel. `None` when the runtime CPU/OS cannot execute one
        /// ([`jit_available`]) or the executable mapping fails — the
        /// caller keeps the interpreter in that case.
        pub fn compile(tape: &BulkTape) -> Option<JitTape> {
            if !jit_available() {
                return None;
            }
            let code = emit_kernel(tape)?;
            Some(JitTape {
                buf: ExecBuf::new(&code)?,
                nregs: tape.num_registers(),
                nvars: tape.num_vars(),
            })
        }

        fn entry(&self) -> Kernel {
            // SAFETY: buf holds one complete kernel emitted by
            // emit_kernel, mapped read-execute; its entry point is its
            // first byte.
            unsafe { std::mem::transmute::<*mut u8, Kernel>(self.buf.ptr) }
        }

        /// Emitted kernel size in bytes.
        pub fn code_len(&self) -> usize {
            self.buf.len
        }

        /// Evaluates the full slab of [`LANES`] samples at column
        /// offset `off`, returning the hit mask (bit `i` set ⇔ sample
        /// `off + i` satisfies every atom) — bit-identical to
        /// [`BulkTape::hit_mask`] with `w == LANES`.
        ///
        /// # Panics
        ///
        /// If fewer than `num_vars` columns are supplied or any column
        /// is shorter than `off + LANES`.
        pub fn hit_mask_slab(&self, cols: &[Vec<f64>], off: usize, s: &mut JitScratch) -> u128 {
            assert!(
                cols.len() >= self.nvars,
                "tape reads {} columns, {} supplied",
                self.nvars,
                cols.len()
            );
            for c in &cols[..self.nvars] {
                assert!(
                    c.len() >= off + LANES,
                    "column shorter than off + LANES ({} < {})",
                    c.len(),
                    off + LANES
                );
            }
            if s.regs.len() < self.nregs * LANES {
                s.regs.resize(self.nregs * LANES, 0.0);
            }
            s.ptrs.clear();
            // SAFETY: in-bounds by the column-length assertions above.
            s.ptrs.extend(
                cols[..self.nvars]
                    .iter()
                    .map(|c| unsafe { c.as_ptr().add(off) }),
            );
            let mut mask = [0u64; 2];
            // SAFETY: the kernel reads exactly LANES f64s behind each
            // column pointer (asserted in bounds), reads/writes the
            // register file (sized to nregs slabs above), and writes
            // 16 bytes of mask — all live for the duration of the call.
            unsafe {
                (self.entry())(s.regs.as_mut_ptr(), s.ptrs.as_ptr(), mask.as_mut_ptr());
            }
            ((mask[1] as u128) << 64) | mask[0] as u128
        }

        /// Counts the samples among the first `n` (columnar layout)
        /// that satisfy the conjunction: full slabs through the native
        /// kernel, the ragged tail through `tail` — which must be the
        /// [`BulkTape`] this kernel was compiled from, so the split is
        /// invisible in the result. Bit-identical to
        /// [`BulkTape::count_hits`].
        pub fn count_hits(&self, tail: &BulkTape, cols: &[Vec<f64>], n: usize) -> u64 {
            thread_local! {
                static SCRATCH: RefCell<(JitScratch, BulkScratch)> =
                    RefCell::new((JitScratch::new(), BulkScratch::new()));
            }
            SCRATCH.with(|s| {
                let (js, bs) = &mut *s.borrow_mut();
                let mut hits = 0u64;
                let mut off = 0usize;
                while off + LANES <= n {
                    hits += self.hit_mask_slab(cols, off, js).count_ones() as u64;
                    off += LANES;
                }
                if off < n {
                    hits += tail.hit_mask(cols, off, n - off, bs).count_ones() as u64;
                }
                hits
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_stub_never_compiles() {
        let pc = crate::parse::parse_system("var x in [0, 1]; pc x < 0.5;")
            .unwrap()
            .constraint_set
            .pcs()[0]
            .clone();
        let tape = crate::EvalTape::compile(&pc);
        let bulk = BulkTape::compile(&tape);
        assert!(portable::JitTape::compile(&bulk).is_none());
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    mod native {
        use super::super::*;
        use crate::bulk::{BulkScratch, LANES};
        use crate::parse::parse_system;
        use crate::{Atom, EvalTape, Expr, PathCondition, RelOp, VarId};

        fn compile_all(src: &str) -> (EvalTape, BulkTape, JitTape) {
            let pc = parse_system(src).unwrap().constraint_set.pcs()[0].clone();
            let tape = EvalTape::compile(&pc);
            let bulk = BulkTape::compile(&tape);
            let jit = JitTape::compile(&bulk).expect("jit available on x86-64 linux");
            (tape, bulk, jit)
        }

        /// Columns exercising every special value the semantics care
        /// about: NaN, ±0, ±∞, subnormals, and ordinary points.
        fn adversarial_cols(nvars: usize, n: usize) -> Vec<Vec<f64>> {
            let specials = [
                f64::NAN,
                0.0,
                -0.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE / 2.0,
                1.0,
                -1.0,
                0.5,
                -2.5,
                1e300,
                -1e-300,
            ];
            (0..nvars)
                .map(|v| {
                    (0..n)
                        .map(|i| {
                            let k = i * 7 + v * 3 + i / 13;
                            if i % 3 == 0 {
                                specials[k % specials.len()]
                            } else {
                                ((k % 211) as f64 - 105.0) / 13.0
                            }
                        })
                        .collect()
                })
                .collect()
        }

        /// Asserts scalar == bulk == jit, hit for hit, over `n` samples
        /// (covering full slabs and a ragged tail when `n % LANES != 0`).
        fn check_three_way(
            tape: &EvalTape,
            bulk: &BulkTape,
            jit: &JitTape,
            cols: &[Vec<f64>],
            n: usize,
        ) {
            let mut point = vec![0.0; cols.len()];
            let mut scalar_hits = 0u64;
            for i in 0..n {
                for (v, c) in cols.iter().enumerate() {
                    point[v] = c[i];
                }
                scalar_hits += tape.holds(&point) as u64;
            }
            assert_eq!(bulk.count_hits(cols, n), scalar_hits, "bulk vs scalar");
            assert_eq!(jit.count_hits(bulk, cols, n), scalar_hits, "jit vs scalar");
            // Slab masks, not just counts: lane-for-lane agreement.
            let mut js = JitScratch::new();
            let mut bs = BulkScratch::new();
            let mut off = 0;
            while off + LANES <= n {
                assert_eq!(
                    jit.hit_mask_slab(cols, off, &mut js),
                    bulk.hit_mask(cols, off, LANES, &mut bs),
                    "slab mask at offset {off}"
                );
                off += LANES;
            }
        }

        #[test]
        fn arithmetic_kernel_matches_interpreter() {
            let (tape, bulk, jit) = compile_all(
                "var x in [-4, 4]; var y in [-4, 4];
                 pc (x * x + y * y) / (1.0 + abs(x - y)) < 3.0 && sqrt(abs(x * y)) >= 0.2 && -x <= y;",
            );
            let cols = adversarial_cols(2, 5 * LANES + 17);
            check_three_way(&tape, &bulk, &jit, &cols, 5 * LANES + 17);
        }

        #[test]
        fn transcendental_callbacks_match_interpreter() {
            let (tape, bulk, jit) = compile_all(
                "var x in [-4, 4]; var y in [-4, 4];
                 pc sin(x) * cos(y) + exp(x / 8.0) > 0.9 && atan2(y, x) < 1.0
                    && pow(abs(x) + 0.1, y / 4.0) < 5.0 && tan(x / 3.0) > -10.0
                    && asin(x / 8.0) + acos(y / 8.0) + atan(x * y) + ln(abs(y) + 0.5) > -20.0;",
            );
            let cols = adversarial_cols(2, 3 * LANES + 41);
            check_three_way(&tape, &bulk, &jit, &cols, 3 * LANES + 41);
        }

        #[test]
        fn min_max_nan_and_signed_zero_lanes_match() {
            // min/max carry implementation-defined tie/NaN behavior, so
            // drive them straight at the adversarial lanes and compare
            // against the scalar tape (itself `f64::min`/`f64::max`).
            let x = Expr::var(VarId(0));
            let y = Expr::var(VarId(1));
            let pc = PathCondition::from_atoms(vec![Atom::new(
                x.clone().min_e(y.clone()).max_e(x.clone().mul(y.clone())),
                RelOp::Le,
                x.max_e(y).min_e(Expr::constant(2.0)),
            )]);
            let tape = EvalTape::compile(&pc);
            let bulk = BulkTape::compile(&tape);
            let jit = JitTape::compile(&bulk).unwrap();
            let cols = adversarial_cols(2, 4 * LANES);
            check_three_way(&tape, &bulk, &jit, &cols, 4 * LANES);
        }

        #[test]
        fn every_relop_rejects_nan_lanes() {
            for rel in ["<", "<=", ">", ">=", "==", "!="] {
                let (tape, bulk, jit) =
                    compile_all(&format!("var x in [-4, 4]; pc sqrt(x) {rel} 0.5;"));
                // sqrt of the negative lanes is NaN: every relop —
                // including != — must miss there.
                let cols = adversarial_cols(1, 2 * LANES + 7);
                check_three_way(&tape, &bulk, &jit, &cols, 2 * LANES + 7);
            }
        }

        #[test]
        fn early_exit_after_contradiction_is_invisible() {
            // First atom is unsatisfiable: the kernel takes the
            // all-false exit before the second atom's instructions.
            let (tape, bulk, jit) =
                compile_all("var x in [-4, 4]; pc x * x < -1.0 && sin(x) > -2.0;");
            let cols = adversarial_cols(1, 2 * LANES);
            check_three_way(&tape, &bulk, &jit, &cols, 2 * LANES);
            let mut js = JitScratch::new();
            assert_eq!(jit.hit_mask_slab(&cols, 0, &mut js), 0);
        }

        #[test]
        fn empty_conjunction_hits_every_lane() {
            let pc = PathCondition::from_atoms(vec![]);
            let tape = EvalTape::compile(&pc);
            let bulk = BulkTape::compile(&tape);
            let jit = JitTape::compile(&bulk).unwrap();
            let cols: Vec<Vec<f64>> = vec![];
            let mut js = JitScratch::new();
            assert_eq!(jit.hit_mask_slab(&cols, 0, &mut js), !0u128);
            assert_eq!(
                jit.count_hits(&bulk, &cols, 3 * LANES + 5),
                (3 * LANES + 5) as u64
            );
        }

        #[test]
        fn ragged_tails_at_every_width_match() {
            let (tape, bulk, jit) =
                compile_all("var x in [-4, 4]; var y in [-4, 4]; pc x + y * 0.5 < 1.0;");
            let cols = adversarial_cols(2, 2 * LANES);
            for n in [0, 1, 63, LANES - 1, LANES, LANES + 1, 2 * LANES - 3] {
                check_three_way(&tape, &bulk, &jit, &cols, n);
            }
        }

        #[test]
        fn deep_register_pressure_chain_compiles_and_matches() {
            // Sum of many two-variable products: wide live ranges force
            // a larger register file and long kernels.
            let mut sum = Expr::constant(0.0);
            for i in 0..40 {
                let t = Expr::var(VarId(0))
                    .mul(Expr::constant(0.01 * i as f64))
                    .add(Expr::var(VarId(1)).mul(Expr::constant(1.0 - 0.01 * i as f64)))
                    .sin();
                sum = sum.add(t);
            }
            let pc =
                PathCondition::from_atoms(vec![Atom::new(sum, RelOp::Gt, Expr::constant(1.0))]);
            let tape = EvalTape::compile(&pc);
            let bulk = BulkTape::compile(&tape);
            let jit = JitTape::compile(&bulk).unwrap();
            assert!(jit.code_len() > 0);
            let cols = adversarial_cols(2, LANES + 9);
            check_three_way(&tape, &bulk, &jit, &cols, LANES + 9);
        }
    }
}
