//! The interval evaluation kind of the unified tape IR: forward interval
//! evaluation plus HC4 backward contraction, over one or many boxes per
//! dispatch.
//!
//! [`EvalTape`] is the IR — a hash-consed node pool in topological order
//! plus the `(lhs, op, rhs)` triple per atom. [`crate::bulk::BulkTape`]
//! recompiles that pool into register-allocated float lanes;
//! [`IntervalTape`] reinterprets the *same* pool over [`Interval`]s. No
//! register allocation happens here: the backward pass needs every
//! node's forward interval, so the pool is evaluated in place, one row
//! of lane values per node.
//!
//! # Batched contraction
//!
//! [`IntervalTape::contract_batch`] narrows many candidate boxes in one
//! call, mirroring `BulkTape`'s structure-of-arrays layout: node `i`'s
//! values for all lanes live in the contiguous row `vals[i·B .. i·B+B]`,
//! and each kernel matches its operator once and then loops over lanes.
//! Atoms are contracted *without* normalizing to `lhs − rhs ⋈ 0`: for an
//! atom `l ⋈ r` the two operand intervals narrow each other directly
//! (e.g. for `l ≤ r`: `l ∩= (−∞, r.hi]` and `r ∩= [l.lo, ∞)`), which
//! yields the same projections as HC4 on the subtraction form but skips
//! the extra node and its outward rounding.
//!
//! Per lane the pass loop is incremental: a lane tracks how many leading
//! pool rows currently hold valid intervals (`valid`), and forward work
//! is skipped for prefixes that are still valid. Narrowing a lane's box
//! invalidates the rows from the narrowed variable's leaf onward; a pass
//! that leaves a lane's box unchanged settles the lane. Certainty
//! classification is served separately by
//! [`IntervalTape::eval_atoms_batch`]: narrowed node values enclose the
//! *solution* set, not the whole box, so deciding whether an atom holds
//! over every point of a box needs one clean forward evaluation.

use qcoral_interval::{Interval, IntervalBox};

use crate::atom::RelOp;
use crate::ctape::{EvalTape, Node};
use crate::expr::{BinOp, UnOp};

/// The interval/HC4 kind of the unified IR, compiled from an
/// [`EvalTape`]'s node pool. See the [module docs](self) for the layout.
#[derive(Clone, Debug)]
pub struct IntervalTape {
    nodes: Vec<Node>,
    atoms: Vec<(u32, RelOp, u32)>,
    /// `(node id, variable index)` per variable leaf, for narrowing
    /// write-back into the box. One entry per variable (hash-consing
    /// dedups the leaves).
    var_nodes: Vec<(u32, u32)>,
    var_bound: u32,
}

/// Per-lane contraction status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LaneState {
    /// Still being narrowed.
    Active,
    /// Reached a fixpoint (a full pass left the box unchanged).
    Settled,
    /// Proven to contain no solution; the box has been emptied.
    Unsat,
}

/// Reusable scratch for [`IntervalTape`] batch calls: node-value rows,
/// atom images, and per-lane bookkeeping. Allocation-free across calls
/// once warm.
#[derive(Default, Debug)]
pub struct IvalScratch {
    lanes: usize,
    /// Node-major rows: `vals[node · lanes + lane]`.
    vals: Vec<Interval>,
    /// Atom-major `(lhs, rhs)` image rows from the last clean forward.
    images: Vec<(Interval, Interval)>,
    state: Vec<LaneState>,
    /// Per lane: number of leading pool rows holding valid intervals.
    valid: Vec<u32>,
    /// Per-pass width snapshot, lane-major: `widths[lane · ndim + dim]`.
    widths: Vec<f64>,
    /// Per-node lane mask reused by the forward kernels.
    mask: Vec<bool>,
}

impl IvalScratch {
    /// Fresh, empty scratch.
    pub fn new() -> IvalScratch {
        IvalScratch::default()
    }

    /// Whether the lane's box survived the last
    /// [`IntervalTape::contract_batch`] call (was not proven empty).
    pub fn sat(&self, lane: usize) -> bool {
        self.state[lane] != LaneState::Unsat
    }

    /// The `(lhs, rhs)` interval images of `atom` on `lane`'s box from
    /// the last [`IntervalTape::eval_atoms_batch`] call. Both entries
    /// are empty for a lane whose box was empty.
    pub fn image(&self, atom: usize, lane: usize) -> (Interval, Interval) {
        self.images[atom * self.lanes + lane]
    }

    fn begin(&mut self, tape: &IntervalTape, lanes: usize, ndim: usize) {
        self.lanes = lanes;
        self.vals.clear();
        self.vals.resize(tape.nodes.len() * lanes, Interval::EMPTY);
        self.images.clear();
        self.images
            .resize(tape.atoms.len() * lanes, (Interval::EMPTY, Interval::EMPTY));
        self.state.clear();
        self.state.resize(lanes, LaneState::Active);
        self.valid.clear();
        self.valid.resize(lanes, 0);
        self.widths.clear();
        self.widths.resize(lanes * ndim, 0.0);
        self.mask.clear();
        self.mask.resize(lanes, false);
    }
}

/// Marks a lane contradiction: flags the lane and empties its box.
fn mark_unsat(lane: usize, boxes: &mut [IntervalBox], state: &mut [LaneState]) {
    state[lane] = LaneState::Unsat;
    if boxes[lane].ndim() > 0 {
        *boxes[lane].dim_mut(0) = Interval::EMPTY;
    }
}

impl IntervalTape {
    /// Compiles the interval kind from the shared IR. Linear in pool
    /// size; the pool and atom triples are reused as-is.
    pub fn compile(tape: &EvalTape) -> IntervalTape {
        let nodes = tape.nodes().to_vec();
        let atoms = tape.atom_nodes().to_vec();
        let mut var_nodes = Vec::new();
        let mut var_bound = 0u32;
        for (i, node) in nodes.iter().enumerate() {
            if let Node::Var(v) = node {
                var_nodes.push((i as u32, *v));
                var_bound = var_bound.max(v + 1);
            }
        }
        IntervalTape {
            nodes,
            atoms,
            var_nodes,
            var_bound,
        }
    }

    /// Number of pool nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of atoms in the conjunction.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The `(lhs node, op, rhs node)` triple per atom.
    pub fn atoms(&self) -> &[(u32, RelOp, u32)] {
        &self.atoms
    }

    /// One past the highest variable index read by the pool.
    pub fn var_bound(&self) -> usize {
        self.var_bound as usize
    }

    /// Clean forward evaluation of every pool node over one box, filling
    /// `vals` (resized as needed). `vals[i]` is a superset of node `i`'s
    /// image over the box; an empty entry means the sub-expression is
    /// undefined everywhere on it (e.g. `sqrt` of a negative range).
    pub fn forward(&self, boxed: &IntervalBox, vals: &mut Vec<Interval>) {
        vals.clear();
        vals.reserve(self.nodes.len());
        for node in &self.nodes {
            let v = match node {
                Node::Const(c) => Interval::point(*c),
                Node::Var(v) => boxed[*v as usize],
                Node::Unary(op, c) => unary_ival(*op, vals[*c as usize]),
                // Deduplication makes x·x literally share one child node;
                // the square form is tighter than the generic product.
                Node::Binary(BinOp::Mul, a, b) if a == b => vals[*a as usize].sqr(),
                Node::Binary(op, a, b) => binary_ival(*op, vals[*a as usize], vals[*b as usize]),
            };
            vals.push(v);
        }
    }

    /// Single-box HC4 fixpoint contraction; a batch of one. Returns
    /// `false` if the box was proven empty (it is also emptied in
    /// place).
    pub fn contract(
        &self,
        boxed: &mut IntervalBox,
        max_passes: usize,
        scratch: &mut IvalScratch,
    ) -> bool {
        self.contract_batch(std::slice::from_mut(boxed), max_passes, scratch);
        scratch.sat(0)
    }

    /// HC4 fixpoint contraction over a batch of boxes — the bulk paving
    /// kernel. Every box is narrowed independently (lanes never
    /// interact); a box proven empty is emptied in place and its lane
    /// reports `!scratch.sat(lane)`. All boxes must share one dimension
    /// count covering [`IntervalTape::var_bound`].
    pub fn contract_batch(
        &self,
        boxes: &mut [IntervalBox],
        max_passes: usize,
        scratch: &mut IvalScratch,
    ) {
        let b = boxes.len();
        if b == 0 {
            return;
        }
        let ndim = boxes[0].ndim();
        debug_assert!(ndim >= self.var_bound());
        debug_assert!(boxes.iter().all(|bx| bx.ndim() == ndim));
        scratch.begin(self, b, ndim);
        for (ln, bx) in boxes.iter().enumerate() {
            if bx.is_empty() {
                scratch.state[ln] = LaneState::Unsat;
            }
        }
        for _ in 0..max_passes {
            if !scratch.state.contains(&LaneState::Active) {
                break;
            }
            // Snapshot widths to detect per-lane convergence at pass end.
            for (ln, bx) in boxes.iter().enumerate() {
                if scratch.state[ln] == LaneState::Active {
                    for d in 0..ndim {
                        scratch.widths[ln * ndim + d] = bx[d].width();
                    }
                }
            }
            for k in 0..self.atoms.len() {
                self.atom_pass(k, boxes, scratch);
            }
            for (ln, bx) in boxes.iter().enumerate() {
                if scratch.state[ln] != LaneState::Active {
                    continue;
                }
                let mut changed = false;
                for d in 0..ndim {
                    let before = scratch.widths[ln * ndim + d];
                    let after = bx[d].width();
                    if before - after > 1e-12 * before.max(1e-300) {
                        changed = true;
                        break;
                    }
                }
                if !changed {
                    scratch.state[ln] = LaneState::Settled;
                }
            }
        }
    }

    /// One HC4-revise step for atom `k` across all active lanes:
    /// forward up to the operand rows, cross-narrow them through the
    /// relation, project backward, and write variable narrowings into
    /// the boxes.
    fn atom_pass(&self, k: usize, boxes: &mut [IntervalBox], scratch: &mut IvalScratch) {
        let (l, op, r) = self.atoms[k];
        let (l, r) = (l as usize, r as usize);
        let need = l.max(r) + 1;
        let b = scratch.lanes;
        self.forward_upto(boxes, need, scratch);
        {
            let IvalScratch { vals, state, .. } = scratch;
            for ln in 0..b {
                if state[ln] != LaneState::Active {
                    continue;
                }
                let lv = vals[l * b + ln];
                let rv = vals[r * b + ln];
                if lv.is_empty() || rv.is_empty() {
                    // The atom is undefined (or already contradicted) on
                    // the whole box: no point of it can satisfy the
                    // conjunction.
                    mark_unsat(ln, boxes, state);
                    continue;
                }
                let (nl, nr) = narrow_atom(op, lv, rv);
                if nl.is_empty() || nr.is_empty() {
                    mark_unsat(ln, boxes, state);
                    continue;
                }
                if l == r {
                    vals[l * b + ln] = nl.intersect(&nr);
                } else {
                    vals[l * b + ln] = nl;
                    vals[r * b + ln] = nr;
                }
            }
        }
        self.backward_upto(boxes, need, scratch);
        self.writeback(boxes, need, scratch);
    }

    /// Forward-evaluates pool rows `0..need` for every active lane whose
    /// valid prefix is shorter, then extends the prefixes.
    fn forward_upto(&self, boxes: &[IntervalBox], need: usize, scratch: &mut IvalScratch) {
        let b = scratch.lanes;
        let IvalScratch {
            vals,
            state,
            valid,
            mask,
            ..
        } = scratch;
        for i in 0..need {
            let mut any = false;
            for ln in 0..b {
                let g = state[ln] == LaneState::Active && (valid[ln] as usize) <= i;
                mask[ln] = g;
                any |= g;
            }
            if any {
                node_row(&self.nodes, i, boxes, vals, b, mask);
            }
        }
        for ln in 0..b {
            if state[ln] == LaneState::Active {
                valid[ln] = valid[ln].max(need as u32);
            }
        }
    }

    /// Backward projection over rows `need-1..0` for active lanes.
    fn backward_upto(&self, boxes: &mut [IntervalBox], need: usize, scratch: &mut IvalScratch) {
        let b = scratch.lanes;
        let IvalScratch { vals, state, .. } = scratch;
        for i in (0..need).rev() {
            if !state.contains(&LaneState::Active) {
                return;
            }
            match &self.nodes[i] {
                Node::Const(_) | Node::Var(_) => {}
                Node::Unary(op, c) => {
                    let (pre, rest) = vals.split_at_mut(i * b);
                    let zrow = &rest[..b];
                    let xrow = &mut pre[(*c as usize) * b..][..b];
                    for ln in 0..b {
                        if state[ln] != LaneState::Active {
                            continue;
                        }
                        let z = zrow[ln];
                        if z.is_empty() {
                            mark_unsat(ln, boxes, state);
                            continue;
                        }
                        let nx = unary_project(*op, z, xrow[ln]);
                        xrow[ln] = nx;
                        if nx.is_empty() {
                            mark_unsat(ln, boxes, state);
                        }
                    }
                }
                Node::Binary(BinOp::Mul, a, bb) if a == bb => {
                    let (pre, rest) = vals.split_at_mut(i * b);
                    let zrow = &rest[..b];
                    let xrow = &mut pre[(*a as usize) * b..][..b];
                    for ln in 0..b {
                        if state[ln] != LaneState::Active {
                            continue;
                        }
                        let z = zrow[ln];
                        if z.is_empty() {
                            mark_unsat(ln, boxes, state);
                            continue;
                        }
                        // z = x²: x ∈ ±sqrt(z).
                        let root = z.sqrt();
                        let x = xrow[ln];
                        let cand = root.intersect(&x).hull(&(-root).intersect(&x));
                        xrow[ln] = cand;
                        if cand.is_empty() {
                            mark_unsat(ln, boxes, state);
                        }
                    }
                }
                Node::Binary(op, a, bb) if a == bb => {
                    // Same node as both children: apply both projections
                    // to the one row in turn.
                    let (pre, rest) = vals.split_at_mut(i * b);
                    let zrow = &rest[..b];
                    let xrow = &mut pre[(*a as usize) * b..][..b];
                    for ln in 0..b {
                        if state[ln] != LaneState::Active {
                            continue;
                        }
                        let z = zrow[ln];
                        if z.is_empty() {
                            mark_unsat(ln, boxes, state);
                            continue;
                        }
                        let x = xrow[ln];
                        let (nx, ny) = binary_project(*op, z, x, x);
                        let nv = x.intersect(&nx).intersect(&ny);
                        xrow[ln] = nv;
                        if nv.is_empty() {
                            mark_unsat(ln, boxes, state);
                        }
                    }
                }
                Node::Binary(op, a, bb) => {
                    let (pre, rest) = vals.split_at_mut(i * b);
                    let zrow = &rest[..b];
                    let (xrow, yrow) = two_rows(pre, *a as usize, *bb as usize, b);
                    for ln in 0..b {
                        if state[ln] != LaneState::Active {
                            continue;
                        }
                        let z = zrow[ln];
                        if z.is_empty() {
                            mark_unsat(ln, boxes, state);
                            continue;
                        }
                        let (nx, ny) = binary_project(*op, z, xrow[ln], yrow[ln]);
                        xrow[ln] = xrow[ln].intersect(&nx);
                        yrow[ln] = yrow[ln].intersect(&ny);
                        if xrow[ln].is_empty() || yrow[ln].is_empty() {
                            mark_unsat(ln, boxes, state);
                        }
                    }
                }
            }
        }
    }

    /// Intersects narrowed variable rows into the boxes. A changed
    /// dimension truncates the lane's valid prefix to the variable's
    /// leaf (earlier rows cannot read a later node, so they stay valid).
    fn writeback(&self, boxes: &mut [IntervalBox], need: usize, scratch: &mut IvalScratch) {
        let b = scratch.lanes;
        let IvalScratch {
            vals, state, valid, ..
        } = scratch;
        for &(nid, var) in &self.var_nodes {
            let nid = nid as usize;
            if nid >= need {
                continue;
            }
            let row = &mut vals[nid * b..][..b];
            for ln in 0..b {
                if state[ln] != LaneState::Active {
                    continue;
                }
                let old = boxes[ln][var as usize];
                let d = old.intersect(&row[ln]);
                if d.is_empty() {
                    mark_unsat(ln, boxes, state);
                    continue;
                }
                if d != old {
                    *boxes[ln].dim_mut(var as usize) = d;
                    row[ln] = d;
                    valid[ln] = valid[ln].min(nid as u32 + 1);
                }
            }
        }
    }

    /// Clean forward evaluation over a batch, filling the per-atom
    /// `(lhs, rhs)` images read back through [`IvalScratch::image`].
    /// Unlike contraction this never narrows: the images are enclosures
    /// of the operand values over *every* point of each box, which is
    /// what certainty classification needs. Lanes with empty boxes get
    /// empty images. Leaves [`IvalScratch::sat`] untouched when the
    /// batch shape matches the preceding `contract_batch` call.
    pub fn eval_atoms_batch(&self, boxes: &[IntervalBox], scratch: &mut IvalScratch) {
        let b = boxes.len();
        if b == 0 {
            return;
        }
        if scratch.lanes != b || scratch.vals.len() != self.nodes.len() * b {
            scratch.begin(self, b, boxes[0].ndim());
        }
        scratch.images.clear();
        scratch
            .images
            .resize(self.atoms.len() * b, (Interval::EMPTY, Interval::EMPTY));
        let IvalScratch {
            vals, valid, mask, ..
        } = scratch;
        for ln in 0..b {
            mask[ln] = !boxes[ln].is_empty();
            // The rows are about to be overwritten with clean values.
            valid[ln] = 0;
        }
        for i in 0..self.nodes.len() {
            node_row(&self.nodes, i, boxes, vals, b, mask);
        }
        for (k, &(l, _, r)) in self.atoms.iter().enumerate() {
            for ln in 0..b {
                scratch.images[k * b + ln] = if scratch.mask[ln] {
                    (
                        scratch.vals[l as usize * b + ln],
                        scratch.vals[r as usize * b + ln],
                    )
                } else {
                    (Interval::EMPTY, Interval::EMPTY)
                };
            }
        }
    }
}

/// Evaluates pool row `i` for every lane set in `mask`.
fn node_row(
    nodes: &[Node],
    i: usize,
    boxes: &[IntervalBox],
    vals: &mut [Interval],
    b: usize,
    mask: &[bool],
) {
    let (pre, rest) = vals.split_at_mut(i * b);
    let row = &mut rest[..b];
    match &nodes[i] {
        Node::Const(c) => {
            let v = Interval::point(*c);
            for (d, &g) in row.iter_mut().zip(mask) {
                if g {
                    *d = v;
                }
            }
        }
        Node::Var(v) => {
            for ln in 0..b {
                if mask[ln] {
                    row[ln] = boxes[ln][*v as usize];
                }
            }
        }
        Node::Unary(op, c) => {
            let src = &pre[(*c as usize) * b..][..b];
            unary_row(*op, row, src, mask);
        }
        Node::Binary(BinOp::Mul, a, bb) if a == bb => {
            let src = &pre[(*a as usize) * b..][..b];
            for ((d, s), &g) in row.iter_mut().zip(src).zip(mask) {
                if g {
                    *d = s.sqr();
                }
            }
        }
        Node::Binary(op, a, bb) => {
            let ra = &pre[(*a as usize) * b..][..b];
            let rb = &pre[(*bb as usize) * b..][..b];
            binary_row(*op, row, ra, rb, mask);
        }
    }
}

/// Two disjoint mutable rows out of the node-value prefix.
fn two_rows(
    pre: &mut [Interval],
    a: usize,
    c: usize,
    b: usize,
) -> (&mut [Interval], &mut [Interval]) {
    debug_assert_ne!(a, c);
    if a < c {
        let (lo, hi) = pre.split_at_mut(c * b);
        (&mut lo[a * b..][..b], &mut hi[..b])
    } else {
        let (lo, hi) = pre.split_at_mut(a * b);
        (&mut hi[..b], &mut lo[c * b..][..b])
    }
}

/// Unary forward kernel: dispatch hoisted out of the lane loop.
fn unary_row(op: UnOp, dst: &mut [Interval], src: &[Interval], mask: &[bool]) {
    macro_rules! lanes {
        (|$x:ident| $e:expr) => {
            for ((d, &$x), &g) in dst.iter_mut().zip(src).zip(mask) {
                if g {
                    *d = $e;
                }
            }
        };
    }
    match op {
        UnOp::Neg => lanes!(|x| -x),
        UnOp::Abs => lanes!(|x| x.abs()),
        UnOp::Sqrt => lanes!(|x| x.sqrt()),
        UnOp::Exp => lanes!(|x| x.exp()),
        UnOp::Ln => lanes!(|x| x.ln()),
        UnOp::Sin => lanes!(|x| x.sin()),
        UnOp::Cos => lanes!(|x| x.cos()),
        UnOp::Tan => lanes!(|x| x.tan()),
        UnOp::Asin => lanes!(|x| x.asin()),
        UnOp::Acos => lanes!(|x| x.acos()),
        UnOp::Atan => lanes!(|x| x.atan()),
    }
}

/// Binary forward kernel: dispatch hoisted out of the lane loop.
fn binary_row(op: BinOp, dst: &mut [Interval], a: &[Interval], b: &[Interval], mask: &[bool]) {
    macro_rules! lanes {
        (|$x:ident, $y:ident| $e:expr) => {
            for (((d, &$x), &$y), &g) in dst.iter_mut().zip(a).zip(b).zip(mask) {
                if g {
                    *d = $e;
                }
            }
        };
    }
    match op {
        BinOp::Add => lanes!(|x, y| x + y),
        BinOp::Sub => lanes!(|x, y| x - y),
        BinOp::Mul => lanes!(|x, y| x * y),
        BinOp::Div => lanes!(|x, y| x / y),
        BinOp::Pow => lanes!(|x, y| x.pow(&y)),
        BinOp::Min => lanes!(|x, y| x.min_i(&y)),
        BinOp::Max => lanes!(|x, y| x.max_i(&y)),
        BinOp::Atan2 => lanes!(|x, y| x.atan2(&y)),
    }
}

/// Single-value unary forward evaluation.
fn unary_ival(op: UnOp, x: Interval) -> Interval {
    match op {
        UnOp::Neg => -x,
        UnOp::Abs => x.abs(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Exp => x.exp(),
        UnOp::Ln => x.ln(),
        UnOp::Sin => x.sin(),
        UnOp::Cos => x.cos(),
        UnOp::Tan => x.tan(),
        UnOp::Asin => x.asin(),
        UnOp::Acos => x.acos(),
        UnOp::Atan => x.atan(),
    }
}

/// Single-value binary forward evaluation.
fn binary_ival(op: BinOp, a: Interval, b: Interval) -> Interval {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Pow => a.pow(&b),
        BinOp::Min => a.min_i(&b),
        BinOp::Max => a.max_i(&b),
        BinOp::Atan2 => a.atan2(&b),
    }
}

/// Cross-narrows the operand images of `l ⋈ r`. Equivalent to HC4 on
/// the normalized `l − r ⋈ 0` form (the projections through the
/// subtraction node reduce to exactly these endpoint cuts) without the
/// subtraction's outward rounding. Strict relations use closed targets,
/// as contraction over closed intervals must.
fn narrow_atom(op: RelOp, l: Interval, r: Interval) -> (Interval, Interval) {
    match op {
        RelOp::Lt | RelOp::Le => (
            l.intersect(&Interval::new(f64::NEG_INFINITY, r.hi())),
            r.intersect(&Interval::new(l.lo(), f64::INFINITY)),
        ),
        RelOp::Gt | RelOp::Ge => (
            l.intersect(&Interval::new(r.lo(), f64::INFINITY)),
            r.intersect(&Interval::new(f64::NEG_INFINITY, l.hi())),
        ),
        RelOp::Eq => {
            let m = l.intersect(&r);
            (m, m)
        }
        // ≠ removes a measure-zero set: no interval narrowing possible.
        RelOp::Ne => (l, r),
    }
}

/// Projection of `z = op(x)` onto `x`: returns a superset of
/// `{t ∈ x : op(t) ∈ z}`.
fn unary_project(op: UnOp, z: Interval, x: Interval) -> Interval {
    use std::f64::consts::{FRAC_PI_2, PI};
    match op {
        UnOp::Neg => x.intersect(&-z),
        UnOp::Abs => {
            let pos = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if pos.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&pos.hull(&-pos))
        }
        UnOp::Sqrt => {
            let nz = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if nz.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&nz.sqr())
        }
        UnOp::Exp => {
            let pz = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if pz.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&pz.ln().widen())
        }
        UnOp::Ln => x.intersect(&z.exp()),
        UnOp::Sin => periodic_project(z, x, PeriodicKind::Sin),
        UnOp::Cos => periodic_project(z, x, PeriodicKind::Cos),
        UnOp::Tan => {
            // t ∈ atan(z) + kπ
            if !x.is_bounded() || x.width() > 64.0 * PI {
                return x;
            }
            let base = z.atan().widen();
            let mut acc = Interval::EMPTY;
            let k_lo = ((x.lo() - base.hi()) / PI).floor() as i64;
            let k_hi = ((x.hi() - base.lo()) / PI).ceil() as i64;
            for k in k_lo..=k_hi {
                let cand =
                    Interval::new_or_empty(base.lo() + k as f64 * PI, base.hi() + k as f64 * PI)
                        .widen();
                acc = acc.hull(&cand.intersect(&x));
            }
            acc
        }
        UnOp::Asin => {
            // z = asin(x) has z ⊆ [-π/2, π/2] where sin is monotone.
            let zc = z.intersect(&Interval::new(-FRAC_PI_2, FRAC_PI_2).widen());
            if zc.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&zc.sin())
        }
        UnOp::Acos => {
            let zc = z.intersect(&Interval::new(0.0, PI).widen());
            if zc.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&zc.cos())
        }
        UnOp::Atan => x.intersect(&z.tan()),
    }
}

enum PeriodicKind {
    Sin,
    Cos,
}

/// Projection of `z = sin(x)` or `z = cos(x)` onto `x`. Enumerates the
/// periods overlapping `x`; returns `x` unchanged if `x` spans too many
/// periods for enumeration to pay off.
fn periodic_project(z: Interval, x: Interval, kind: PeriodicKind) -> Interval {
    use std::f64::consts::PI;
    let two_pi = 2.0 * PI;
    let zc = z.intersect(&Interval::new(-1.0, 1.0));
    if zc.is_empty() {
        return Interval::EMPTY;
    }
    if !x.is_bounded() || x.width() > 32.0 * two_pi {
        return x;
    }
    // Solutions are (A + 2πk) ∪ (B + 2πk) with the two principal branches.
    let (a, b) = match kind {
        PeriodicKind::Sin => {
            let asin = zc.asin().widen(); // ⊆ [-π/2, π/2]
            let mirrored = Interval::new_or_empty(PI - asin.hi(), PI - asin.lo()).widen();
            (asin, mirrored)
        }
        PeriodicKind::Cos => {
            let acos = zc.acos().widen(); // ⊆ [0, π]
            (acos, -acos)
        }
    };
    let mut acc = Interval::EMPTY;
    for branch in [a, b] {
        if branch.is_empty() {
            continue;
        }
        let k_lo = ((x.lo() - branch.hi()) / two_pi).floor() as i64;
        let k_hi = ((x.hi() - branch.lo()) / two_pi).ceil() as i64;
        for k in k_lo..=k_hi {
            let cand = Interval::new_or_empty(
                branch.lo() + k as f64 * two_pi,
                branch.hi() + k as f64 * two_pi,
            )
            .widen();
            acc = acc.hull(&cand.intersect(&x));
        }
    }
    acc
}

/// Projection of `z = op(x, y)` onto `(x, y)`.
fn binary_project(op: BinOp, z: Interval, x: Interval, y: Interval) -> (Interval, Interval) {
    match op {
        BinOp::Add => (x.intersect(&(z - y)), y.intersect(&(z - x))),
        BinOp::Sub => (x.intersect(&(z + y)), y.intersect(&(x - z))),
        BinOp::Mul => {
            // Solve x·y ∈ z. Division by an interval containing zero in
            // its interior yields ENTIRE (no narrowing). A point-zero
            // factor constrains nothing about the other operand.
            let nx = if y == Interval::ZERO {
                x
            } else {
                x.intersect(&(z / y))
            };
            let ny = if x == Interval::ZERO {
                y
            } else {
                y.intersect(&(z / x))
            };
            (nx, ny)
        }
        BinOp::Div => {
            // z = x / y  ⇒  x = z·y ;  y = x / z.
            let nx = x.intersect(&(z * y));
            let ny = if z == Interval::ZERO {
                y
            } else {
                y.intersect(&(x / z))
            };
            (nx, ny)
        }
        BinOp::Pow => pow_project(z, x, y),
        BinOp::Min => {
            // min(x, y) = z: both operands are ≥ z.lo; an operand forced
            // to be the minimum (other's lo above z.hi) must lie in z.
            let ge = Interval::new(z.lo(), f64::INFINITY);
            let mut nx = x.intersect(&ge);
            let mut ny = y.intersect(&ge);
            if y.lo() > z.hi() {
                nx = nx.intersect(&z);
            }
            if x.lo() > z.hi() {
                ny = ny.intersect(&z);
            }
            (nx, ny)
        }
        BinOp::Max => {
            let le = Interval::new(f64::NEG_INFINITY, z.hi());
            let mut nx = x.intersect(&le);
            let mut ny = y.intersect(&le);
            if y.hi() < z.lo() {
                nx = nx.intersect(&z);
            }
            if x.hi() < z.lo() {
                ny = ny.intersect(&z);
            }
            (nx, ny)
        }
        // atan2 narrowing is not implemented (sound: no narrowing).
        BinOp::Atan2 => (x, y),
    }
}

/// Projection for `z = x^y`.
fn pow_project(z: Interval, x: Interval, y: Interval) -> (Interval, Interval) {
    // Only narrow x, and only for a point exponent (the common case in
    // path conditions); anything else keeps the operands unchanged.
    if !y.is_point() {
        return (x, y);
    }
    let n = y.lo();
    if n == 0.0 {
        return (x, y);
    }
    if n.fract() == 0.0 && n.abs() <= 64.0 {
        let n = n as i32;
        if n > 0 && n % 2 == 1 {
            // Odd power: monotone; x = z^(1/n) with sign preserved.
            let root = signed_root(z, n);
            return (x.intersect(&root), y);
        }
        if n > 0 {
            // Even power: |x| ∈ root(z ∩ [0, ∞)).
            let nz = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if nz.is_empty() {
                return (Interval::EMPTY, y);
            }
            let root = signed_root(nz, n);
            let neg = -root;
            let cand = root.intersect(&x).hull(&neg.intersect(&x));
            return (cand, y);
        }
        // Negative exponents: x = (1/z)^(1/|n|); keep conservative.
        return (x, y);
    }
    // Non-integer exponent: defined only for x ≥ 0, where x ↦ x^n is
    // monotone. The interval power of the non-negative `z` slice keeps
    // the zero limit itself (0 ∈ z^(1/n) whenever 0 ∈ z), so no hull
    // with {0} is needed; one `widen` absorbs the `powf`-vs-real
    // rounding of the scalar kinds.
    let nz = z.intersect(&Interval::new(0.0, f64::INFINITY));
    if nz.is_empty() {
        return (Interval::EMPTY, y);
    }
    if n > 0.0 {
        let inv = Interval::point(1.0) / Interval::point(n);
        let cand = nz.pow(&inv).widen();
        return (x.intersect(&cand), y);
    }
    (x, y)
}

/// Sign-preserving n-th root hull for positive integer `n`.
fn signed_root(z: Interval, n: i32) -> Interval {
    if z.is_empty() {
        return Interval::EMPTY;
    }
    let root1 = |v: f64| -> f64 {
        if v.is_infinite() {
            return v;
        }
        v.signum() * v.abs().powf(1.0 / n as f64)
    };
    Interval::new_or_empty(root1(z.lo()), root1(z.hi()))
        .widen()
        .widen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, PathCondition};
    use crate::domain::VarId;
    use crate::expr::Expr;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn y() -> Expr {
        Expr::var(VarId(1))
    }

    fn tape_of(atoms: Vec<Atom>) -> IntervalTape {
        IntervalTape::compile(&EvalTape::compile(&PathCondition::from_atoms(atoms)))
    }

    fn bx(dims: &[(f64, f64)]) -> IntervalBox {
        dims.iter().map(|&(l, h)| Interval::new(l, h)).collect()
    }

    fn band(e: Expr, lo: f64, hi: f64) -> Vec<Atom> {
        vec![
            Atom::new(e.clone(), RelOp::Ge, Expr::constant(lo)),
            Atom::new(e, RelOp::Le, Expr::constant(hi)),
        ]
    }

    #[test]
    fn forward_matches_point_eval() {
        let e = x().mul(y()).sin().add(x().sqrt());
        let t = tape_of(vec![Atom::new(e, RelOp::Gt, Expr::constant(0.0))]);
        let mut vals = Vec::new();
        t.forward(&bx(&[(4.0, 4.0), (0.5, 0.5)]), &mut vals);
        let (l, _, _) = t.atoms()[0];
        let r = vals[l as usize];
        let exact = (4.0f64 * 0.5).sin() + 2.0;
        assert!(r.contains(exact), "{r} should contain {exact}");
        assert!(r.width() < 1e-9);
    }

    #[test]
    fn forward_empty_for_undefined() {
        let t = tape_of(vec![Atom::new(x().sqrt(), RelOp::Gt, Expr::constant(0.0))]);
        let mut vals = Vec::new();
        t.forward(&bx(&[(-3.0, -1.0)]), &mut vals);
        let (l, _, _) = t.atoms()[0];
        assert!(vals[l as usize].is_empty());
    }

    #[test]
    fn contract_narrows_linear() {
        // x + y ≤ 0.5 on x,y ∈ [0,1]: each var narrows to [0, 0.5].
        let t = tape_of(vec![Atom::new(
            x().add(y()),
            RelOp::Le,
            Expr::constant(0.5),
        )]);
        let mut b = bx(&[(0.0, 1.0), (0.0, 1.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert!(b[0].hi() <= 0.6);
        assert!(b[1].hi() <= 0.6);
    }

    #[test]
    fn contract_sqrt_band() {
        // sqrt(x) ∈ [2, 3] ⇒ x ∈ [4, 9].
        let t = tape_of(band(x().sqrt(), 2.0, 3.0));
        let mut b = bx(&[(0.0, 100.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert!(b[0].lo() >= 3.9 && b[0].hi() <= 9.1, "{}", b[0]);
    }

    #[test]
    fn contract_sin_enumerates_periods() {
        use std::f64::consts::PI;
        // sin(x) ∈ [0.9, 1] on x ∈ [0, 4π]: solutions near π/2, π/2+2π.
        let t = tape_of(band(x().sin(), 0.9, 1.0));
        let mut b = bx(&[(0.0, 4.0 * PI)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        let lo_expect = 0.9f64.asin();
        let hi_expect = 2.0 * PI + PI - 0.9f64.asin();
        assert!(b[0].lo() >= lo_expect - 0.01, "{}", b[0]);
        assert!(b[0].hi() <= hi_expect + 0.01, "{}", b[0]);
        assert!(b[0].contains(PI / 2.0));
        assert!(b[0].contains(PI / 2.0 + 2.0 * PI));
    }

    #[test]
    fn contract_even_power() {
        // x² ∈ [4, 9] on x ∈ [-10, 10] ⇒ x ∈ [-3, 3] (hull of ±[2,3]).
        let t = tape_of(band(x().pow(Expr::constant(2.0)), 4.0, 9.0));
        let mut b = bx(&[(-10.0, 10.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert!(b[0].lo() >= -3.1 && b[0].hi() <= 3.1, "{}", b[0]);
        assert!(b[0].contains(2.5) && b[0].contains(-2.5));
    }

    #[test]
    fn contract_noninteger_power_is_tight() {
        // x^2.5 ∈ [4, 9] on x ∈ [0, 100]: the projection is monotone, so
        // the lower bound must rise to ≈4^0.4 — the over-wide hull with
        // {0} the old backward pass applied would leave it at 0.
        let t = tape_of(band(x().pow(Expr::constant(2.5)), 4.0, 9.0));
        let mut b = bx(&[(0.0, 100.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        let lo_expect = 4.0f64.powf(0.4);
        let hi_expect = 9.0f64.powf(0.4);
        assert!(b[0].lo() >= lo_expect - 0.01, "{}", b[0]);
        assert!(b[0].hi() <= hi_expect + 0.01, "{}", b[0]);
        assert!(b[0].contains(2.0));
    }

    #[test]
    fn contract_min_forcing() {
        // min(x, y) ∈ [5, 6] with y ∈ [10, 20] forces x ∈ [5, 6].
        let t = tape_of(band(x().min_e(y()), 5.0, 6.0));
        let mut b = bx(&[(0.0, 100.0), (10.0, 20.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert!(b[0].lo() >= 4.9 && b[0].hi() <= 6.1, "{}", b[0]);
    }

    #[test]
    fn contract_exp_band() {
        // exp(x) ∈ [1, e] ⇒ x ∈ [0, 1].
        let t = tape_of(band(x().exp(), 1.0, std::f64::consts::E));
        let mut b = bx(&[(-10.0, 10.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert!(b[0].lo() >= -0.001 && b[0].hi() <= 1.001, "{}", b[0]);
    }

    #[test]
    fn contract_proves_empty() {
        // x² ≤ -1 is impossible.
        let t = tape_of(vec![Atom::new(
            x().pow(Expr::constant(2.0)),
            RelOp::Le,
            Expr::constant(-1.0),
        )]);
        let mut b = bx(&[(-1.0, 1.0)]);
        let mut s = IvalScratch::new();
        assert!(!t.contract(&mut b, 8, &mut s));
        assert!(b.is_empty());
    }

    #[test]
    fn contract_mul_zero_factor_does_not_overprune() {
        // x · 0 = 0: x is unconstrained, must stay [0, 1].
        let t = tape_of(vec![Atom::new(
            x().mul(Expr::constant(0.0)),
            RelOp::Eq,
            Expr::constant(0.0),
        )]);
        let mut b = bx(&[(0.0, 1.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert_eq!(b[0], Interval::new(0.0, 1.0));
    }

    #[test]
    fn contract_dedup_narrows_shared_subterms_together() {
        // (x+1)² ∈ [0, 1] on x ∈ [-3, 1]: both occurrences of (x+1)
        // narrow simultaneously, giving x ∈ [-2, 0].
        let shared = x().add(Expr::constant(1.0));
        let t = tape_of(band(shared.clone().mul(shared), 0.0, 1.0));
        let mut b = bx(&[(-3.0, 1.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        assert!(
            b[0].lo() >= -2.01 && b[0].hi() <= 0.01,
            "shared narrowing should give [-2, 0], got {}",
            b[0]
        );
        assert!(b[0].contains(-1.5) && b[0].contains(-0.5));
    }

    #[test]
    fn batch_matches_single_box_contraction() {
        // Lanes are independent: contracting a batch gives bit-identical
        // boxes and verdicts to contracting each box alone.
        let shared = x().add(y().sin());
        let mut atoms = band(shared.clone().mul(shared), 0.1, 0.8);
        atoms.push(Atom::new(x().sub(y()), RelOp::Lt, Expr::constant(0.5)));
        let t = tape_of(atoms);
        let seeds = [
            bx(&[(-2.0, 1.5), (-3.0, 3.0)]),
            bx(&[(0.0, 0.25), (0.5, 2.0)]),
            bx(&[(5.0, 9.0), (5.0, 9.0)]),
            bx(&[(-1.0, -0.5), (0.0, 0.1)]),
            bx(&[(0.0, 4.0), (-1.0, 1.0)]),
        ];
        let mut batch: Vec<IntervalBox> = seeds.to_vec();
        let mut s = IvalScratch::new();
        t.contract_batch(&mut batch, 8, &mut s);
        let batch_sat: Vec<bool> = (0..batch.len()).map(|ln| s.sat(ln)).collect();
        for (i, seed) in seeds.iter().enumerate() {
            let mut single = seed.clone();
            let mut ss = IvalScratch::new();
            let sat = t.contract(&mut single, 8, &mut ss);
            assert_eq!(sat, batch_sat[i], "lane {i} verdict");
            assert_eq!(single.dims(), batch[i].dims(), "lane {i} box");
        }
    }

    #[test]
    fn eval_atoms_images_enclose_whole_box() {
        // After contraction narrows, the certainty images must still
        // cover the atom operands over every point of the final box.
        let t = tape_of(band(x().sqrt(), 2.0, 3.0));
        let mut b = bx(&[(0.0, 100.0)]);
        let mut s = IvalScratch::new();
        assert!(t.contract(&mut b, 8, &mut s));
        let boxes = [b.clone()];
        t.eval_atoms_batch(&boxes, &mut s);
        let (l0, _) = s.image(0, 0);
        // sqrt over the narrowed [≈4, ≈9] box.
        assert!(l0.contains(2.0) && l0.contains(3.0), "{l0}");
        assert!(s.sat(0));
    }

    #[test]
    fn pre_empty_boxes_report_unsat() {
        let t = tape_of(vec![Atom::new(x(), RelOp::Lt, Expr::constant(1.0))]);
        let mut boxes = vec![bx(&[(0.0, 0.5)]), {
            let mut e = bx(&[(0.0, 0.5)]);
            *e.dim_mut(0) = Interval::EMPTY;
            e
        }];
        let mut s = IvalScratch::new();
        t.contract_batch(&mut boxes, 8, &mut s);
        assert!(s.sat(0));
        assert!(!s.sat(1));
    }
}
