//! Input domains: bounded, named floating-point variables.
//!
//! The paper's problem statement (Eq. 1) assumes the input domain `D` is the
//! Cartesian product of closed intervals, one per input variable. A
//! [`Domain`] records the variable names and their bounds; variables are
//! referenced everywhere else by their dense [`VarId`] index.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense index identifying an input variable within a [`Domain`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable's index as a `usize`, for slicing into environments.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A single variable declaration: name plus closed bounds `[lo, hi]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Source-level variable name.
    pub name: String,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

/// The bounded input domain: an ordered list of named variables with
/// closed-interval bounds.
///
/// # Example
///
/// ```
/// use qcoral_constraints::Domain;
///
/// let mut d = Domain::new();
/// let x = d.declare("x", -1.0, 1.0).unwrap();
/// assert_eq!(d.name(x), "x");
/// assert_eq!(d.bounds(x), (-1.0, 1.0));
/// assert_eq!(d.index_of("x"), Some(x));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    vars: Vec<VarDecl>,
}

/// Error produced when declaring an invalid or duplicate variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainError {
    /// A variable with this name already exists.
    Duplicate(String),
    /// The bounds are not a valid closed interval (`lo > hi`, or NaN, or
    /// infinite).
    InvalidBounds(String),
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Duplicate(n) => write!(f, "duplicate variable `{n}`"),
            DomainError::InvalidBounds(n) => {
                write!(f, "invalid bounds for variable `{n}` (need finite lo ≤ hi)")
            }
        }
    }
}

impl std::error::Error for DomainError {}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Domain {
        Domain::default()
    }

    /// Declares a new variable with bounds `[lo, hi]` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::Duplicate`] if the name is already declared
    /// and [`DomainError::InvalidBounds`] if the bounds are not finite with
    /// `lo ≤ hi`.
    pub fn declare(&mut self, name: &str, lo: f64, hi: f64) -> Result<VarId, DomainError> {
        if self.index_of(name).is_some() {
            return Err(DomainError::Duplicate(name.to_owned()));
        }
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(DomainError::InvalidBounds(name.to_owned()));
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_owned(),
            lo,
            hi,
        });
        Ok(id)
    }

    /// Number of variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if the domain has no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Name of variable `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// Bounds `(lo, hi)` of variable `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn bounds(&self, id: VarId) -> (f64, f64) {
        let v = &self.vars[id.index()];
        (v.lo, v.hi)
    }

    /// Looks up a variable id by name.
    pub fn index_of(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Iterates over `(VarId, &VarDecl)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarDecl)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Returns `true` if `point` (indexed by `VarId`) lies inside the
    /// domain box.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.len()`.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.len(), "point/domain dimension mismatch");
        self.vars
            .iter()
            .zip(point)
            .all(|(v, &p)| p >= v.lo && p <= v.hi)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.vars {
            writeln!(f, "var {} in [{}, {}];", v.name, v.lo, v.hi)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut d = Domain::new();
        let x = d.declare("x", 0.0, 1.0).unwrap();
        let y = d.declare("y", -5.0, 5.0).unwrap();
        assert_eq!(x, VarId(0));
        assert_eq!(y, VarId(1));
        assert_eq!(d.len(), 2);
        assert_eq!(d.name(y), "y");
        assert_eq!(d.bounds(x), (0.0, 1.0));
        assert_eq!(d.index_of("y"), Some(y));
        assert_eq!(d.index_of("z"), None);
    }

    #[test]
    fn duplicate_rejected() {
        let mut d = Domain::new();
        d.declare("x", 0.0, 1.0).unwrap();
        assert_eq!(
            d.declare("x", 0.0, 2.0),
            Err(DomainError::Duplicate("x".into()))
        );
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut d = Domain::new();
        assert!(matches!(
            d.declare("x", 2.0, 1.0),
            Err(DomainError::InvalidBounds(_))
        ));
        assert!(matches!(
            d.declare("y", f64::NAN, 1.0),
            Err(DomainError::InvalidBounds(_))
        ));
        assert!(matches!(
            d.declare("z", 0.0, f64::INFINITY),
            Err(DomainError::InvalidBounds(_))
        ));
    }

    #[test]
    fn containment() {
        let mut d = Domain::new();
        d.declare("x", 0.0, 1.0).unwrap();
        d.declare("y", -1.0, 1.0).unwrap();
        assert!(d.contains(&[0.5, 0.0]));
        assert!(d.contains(&[0.0, -1.0]));
        assert!(!d.contains(&[1.5, 0.0]));
    }

    #[test]
    fn display_roundtrips_format() {
        let mut d = Domain::new();
        d.declare("alt", 0.0, 20000.0).unwrap();
        assert_eq!(d.to_string(), "var alt in [0, 20000];\n");
    }
}
