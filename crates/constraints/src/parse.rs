//! Parser for the textual constraint language.
//!
//! The language stores a quantification problem as data: variable
//! declarations with bounds, followed by one `pc` clause per path
//! condition. Example (the paper's §4.4 safety monitor):
//!
//! ```text
//! var altitude in [0, 20000];
//! var headFlap in [-10, 10];
//! var tailFlap in [-10, 10];
//!
//! pc altitude > 9000;
//! pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;
//! ```
//!
//! Grammar (whitespace and `#`/`//` comments ignored):
//!
//! ```text
//! system  := (vardecl | pcdecl)*
//! vardecl := "var" IDENT "in" "[" num "," num "]" ";"
//! pcdecl  := "pc" atom ("&&" atom)* ";"
//! atom    := expr relop expr
//! relop   := "<" | "<=" | ">" | ">=" | "==" | "!="
//! expr    := term (("+" | "-") term)*
//! term    := unary (("*" | "/") unary)*
//! unary   := ("-" | "+") unary | power
//! power   := primary ("^" unary)?          # right associative
//! primary := NUM | IDENT | IDENT "(" expr ("," expr)* ")" | "(" expr ")"
//! ```
//!
//! Known functions: `sin cos tan asin acos atan sqrt exp ln log abs`
//! (1-argument) and `pow min max atan2` (2-argument). `pi` and `e` are
//! predefined constants unless shadowed by a variable declaration.

use crate::lexer::{ParseError, Sym, Token, TokenStream};
use crate::{Atom, BinOp, ConstraintSet, Domain, Expr, PathCondition, RelOp, UnOp};

/// A parsed constraint system: the input domain plus the disjunction of
/// path conditions.
#[derive(Clone, Debug, PartialEq)]
pub struct System {
    /// Declared input variables with bounds.
    pub domain: Domain,
    /// The disjunction of path conditions (`PCT`).
    pub constraint_set: ConstraintSet,
}

/// Parses a complete constraint system.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on syntax errors,
/// unknown identifiers or malformed declarations.
///
/// # Example
///
/// ```
/// use qcoral_constraints::parse::parse_system;
///
/// let sys = parse_system("var x in [0, 1]; pc x < 0.5;").unwrap();
/// assert_eq!(sys.domain.len(), 1);
/// assert_eq!(sys.constraint_set.len(), 1);
/// ```
pub fn parse_system(src: &str) -> Result<System, ParseError> {
    let mut ts = TokenStream::new(src)?;
    let mut domain = Domain::new();
    let mut cs = ConstraintSet::new();
    while !ts.at_eof() {
        if ts.eat_kw("var") {
            let pos = ts.pos();
            let name = ts.expect_ident()?;
            if !ts.eat_kw("in") {
                return Err(ParseError::new(
                    "expected `in` after variable name",
                    ts.pos(),
                ));
            }
            ts.expect_sym(Sym::LBracket)?;
            let lo = ts.expect_num()?;
            ts.expect_sym(Sym::Comma)?;
            let hi = ts.expect_num()?;
            ts.expect_sym(Sym::RBracket)?;
            ts.expect_sym(Sym::Semi)?;
            domain
                .declare(&name, lo, hi)
                .map_err(|e| ParseError::new(e.to_string(), pos))?;
        } else if ts.eat_kw("pc") {
            let pc = parse_conjunction(&mut ts, &domain)?;
            ts.expect_sym(Sym::Semi)?;
            cs.push(pc);
        } else {
            return Err(ParseError::new(
                format!("expected `var` or `pc`, found {}", ts.peek()),
                ts.pos(),
            ));
        }
    }
    Ok(System {
        domain,
        constraint_set: cs,
    })
}

/// Parses a conjunction of atoms (`a && b && ...`) against a known domain.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or unknown variables.
pub fn parse_conjunction(
    ts: &mut TokenStream,
    domain: &Domain,
) -> Result<PathCondition, ParseError> {
    let mut atoms = vec![parse_atom(ts, domain)?];
    while ts.eat_sym(Sym::AndAnd) {
        atoms.push(parse_atom(ts, domain)?);
    }
    Ok(PathCondition::from_atoms(atoms))
}

/// Parses a single relational atom.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or unknown variables.
pub fn parse_atom(ts: &mut TokenStream, domain: &Domain) -> Result<Atom, ParseError> {
    let lhs = parse_expr(ts, domain)?;
    let op = match ts.peek() {
        Token::Sym(Sym::Lt) => RelOp::Lt,
        Token::Sym(Sym::Le) => RelOp::Le,
        Token::Sym(Sym::Gt) => RelOp::Gt,
        Token::Sym(Sym::Ge) => RelOp::Ge,
        Token::Sym(Sym::EqEq) => RelOp::Eq,
        Token::Sym(Sym::Ne) => RelOp::Ne,
        t => {
            return Err(ParseError::new(
                format!("expected relational operator, found {t}"),
                ts.pos(),
            ))
        }
    };
    ts.next();
    let rhs = parse_expr(ts, domain)?;
    Ok(Atom::new(lhs, op, rhs))
}

/// Parses an arithmetic expression.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or unknown variables.
pub fn parse_expr(ts: &mut TokenStream, domain: &Domain) -> Result<Expr, ParseError> {
    let mut e = parse_term(ts, domain)?;
    loop {
        if ts.eat_sym(Sym::Plus) {
            e = e.add(parse_term(ts, domain)?);
        } else if ts.eat_sym(Sym::Minus) {
            e = e.sub(parse_term(ts, domain)?);
        } else {
            return Ok(e);
        }
    }
}

fn parse_term(ts: &mut TokenStream, domain: &Domain) -> Result<Expr, ParseError> {
    let mut e = parse_unary(ts, domain)?;
    loop {
        if ts.eat_sym(Sym::Star) {
            e = e.mul(parse_unary(ts, domain)?);
        } else if ts.eat_sym(Sym::Slash) {
            e = e.div(parse_unary(ts, domain)?);
        } else {
            return Ok(e);
        }
    }
}

fn parse_unary(ts: &mut TokenStream, domain: &Domain) -> Result<Expr, ParseError> {
    if ts.eat_sym(Sym::Minus) {
        return Ok(parse_unary(ts, domain)?.neg());
    }
    if ts.eat_sym(Sym::Plus) {
        return parse_unary(ts, domain);
    }
    parse_power(ts, domain)
}

fn parse_power(ts: &mut TokenStream, domain: &Domain) -> Result<Expr, ParseError> {
    let base = parse_primary(ts, domain)?;
    if ts.eat_sym(Sym::Caret) {
        // Right-associative: a ^ b ^ c = a ^ (b ^ c).
        let exponent = parse_unary(ts, domain)?;
        return Ok(base.pow(exponent));
    }
    Ok(base)
}

fn parse_primary(ts: &mut TokenStream, domain: &Domain) -> Result<Expr, ParseError> {
    let pos = ts.pos();
    match ts.next() {
        Token::Num(v) => Ok(Expr::constant(v)),
        Token::Sym(Sym::LParen) => {
            let e = parse_expr(ts, domain)?;
            ts.expect_sym(Sym::RParen)?;
            Ok(e)
        }
        Token::Ident(name) => {
            if ts.eat_sym(Sym::LParen) {
                let mut args = vec![parse_expr(ts, domain)?];
                while ts.eat_sym(Sym::Comma) {
                    args.push(parse_expr(ts, domain)?);
                }
                ts.expect_sym(Sym::RParen)?;
                apply_function(&name, args, pos)
            } else if let Some(id) = domain.index_of(&name) {
                Ok(Expr::var(id))
            } else {
                match name.as_str() {
                    "pi" => Ok(Expr::constant(std::f64::consts::PI)),
                    "e" => Ok(Expr::constant(std::f64::consts::E)),
                    _ => Err(ParseError::new(
                        format!(
                            "unknown variable `{name}` (declare it with `var {name} in [lo, hi];`)"
                        ),
                        pos,
                    )),
                }
            }
        }
        t => Err(ParseError::new(
            format!("expected expression, found {t}"),
            pos,
        )),
    }
}

/// Resolves a function-call syntax node (`sin(e)`, `pow(a, b)`, …) to an
/// expression, validating arity. Shared with the MiniJ program parser in
/// `qcoral-symexec`.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown function names or wrong arity.
pub fn apply_function(
    name: &str,
    mut args: Vec<Expr>,
    pos: crate::lexer::Pos,
) -> Result<Expr, ParseError> {
    let unary = |op: UnOp, mut args: Vec<Expr>| -> Result<Expr, ParseError> {
        if args.len() != 1 {
            return Err(ParseError::new(
                format!("function `{name}` takes 1 argument, got {}", args.len()),
                pos,
            ));
        }
        Ok(Expr::unary(op, args.remove(0)))
    };
    match name {
        "sin" => unary(UnOp::Sin, args),
        "cos" => unary(UnOp::Cos, args),
        "tan" => unary(UnOp::Tan, args),
        "asin" => unary(UnOp::Asin, args),
        "acos" => unary(UnOp::Acos, args),
        "atan" => unary(UnOp::Atan, args),
        "sqrt" => unary(UnOp::Sqrt, args),
        "exp" => unary(UnOp::Exp, args),
        "ln" | "log" => unary(UnOp::Ln, args),
        "abs" => unary(UnOp::Abs, args),
        "pow" | "min" | "max" | "atan2" => {
            if args.len() != 2 {
                return Err(ParseError::new(
                    format!("function `{name}` takes 2 arguments, got {}", args.len()),
                    pos,
                ));
            }
            let b = args.pop().expect("two arguments");
            let a = args.pop().expect("two arguments");
            let op = match name {
                "pow" => BinOp::Pow,
                "min" => BinOp::Min,
                "max" => BinOp::Max,
                _ => BinOp::Atan2,
            };
            Ok(Expr::binary(op, a, b))
        }
        _ => Err(ParseError::new(
            format!(
                "unknown function `{name}` (known: sin cos tan asin acos atan sqrt exp ln log abs pow min max atan2)"
            ),
            pos,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(src: &str) -> System {
        parse_system(src).unwrap()
    }

    #[test]
    fn parses_paper_example() {
        let s = sys("var altitude in [0, 20000];
                     var headFlap in [-10, 10];
                     var tailFlap in [-10, 10];
                     pc altitude > 9000;
                     pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;");
        assert_eq!(s.domain.len(), 3);
        assert_eq!(s.constraint_set.len(), 2);
        // PC2 is satisfied for alt=0, hf*tf = pi/2
        let hf = 1.0;
        let tf = std::f64::consts::FRAC_PI_2;
        assert!(s.constraint_set.pcs()[1].holds(&[0.0, hf, tf]));
        assert!(!s.constraint_set.pcs()[1].holds(&[0.0, 0.0, 0.0]));
    }

    #[test]
    fn precedence_and_associativity() {
        let s = sys("var x in [0, 10]; pc x * 2 + 1 < x ^ 2 - 3;");
        let atom = &s.constraint_set.pcs()[0].atoms()[0];
        // lhs = (x*2)+1 at x=3 → 7 ; rhs = x^2-3 → 6
        assert_eq!(atom.lhs().eval(&[3.0]), 7.0);
        assert_eq!(atom.rhs().eval(&[3.0]), 6.0);
        // ^ is right-associative: 2^3^2 = 2^9 = 512
        let s2 = sys("var x in [0,1]; pc 2 ^ 3 ^ 2 > x;");
        assert_eq!(
            s2.constraint_set.pcs()[0].atoms()[0].lhs().eval(&[0.0]),
            512.0
        );
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul_chain() {
        let s = sys("var x in [-1,1]; pc -x * 3 < 1;");
        let atom = &s.constraint_set.pcs()[0].atoms()[0];
        assert_eq!(atom.lhs().eval(&[2.0]), -6.0);
    }

    #[test]
    fn functions_parse() {
        let s = sys("var x in [0, 1]; var y in [0, 1];
                     pc pow(x, 2) + min(x, y) <= atan2(y, x) && sqrt(abs(x)) != ln(exp(y));");
        let pc = &s.constraint_set.pcs()[0];
        assert_eq!(pc.len(), 2);
    }

    #[test]
    fn constants_pi_and_e() {
        let s = sys("var x in [0, 10]; pc x < 2 * pi;");
        let atom = &s.constraint_set.pcs()[0].atoms()[0];
        assert!((atom.rhs().eval(&[0.0]) - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn variable_shadows_constant() {
        let s = sys("var pi in [3, 4]; pc pi > 3.5;");
        assert!(s.constraint_set.holds(&[3.7]));
    }

    #[test]
    fn negative_bounds() {
        let s = sys("var x in [-10, -1]; pc x <= -5;");
        assert_eq!(s.domain.bounds(crate::VarId(0)), (-10.0, -1.0));
        assert!(s.constraint_set.holds(&[-7.0]));
    }

    #[test]
    fn error_unknown_variable() {
        let err = parse_system("pc x < 1;").unwrap_err();
        assert!(err.msg.contains("unknown variable `x`"), "{err}");
    }

    #[test]
    fn error_unknown_function() {
        let err = parse_system("var x in [0,1]; pc sinh(x) < 1;").unwrap_err();
        assert!(err.msg.contains("unknown function `sinh`"), "{err}");
    }

    #[test]
    fn error_arity() {
        let err = parse_system("var x in [0,1]; pc sin(x, x) < 1;").unwrap_err();
        assert!(err.msg.contains("takes 1 argument"), "{err}");
        let err2 = parse_system("var x in [0,1]; pc pow(x) < 1;").unwrap_err();
        assert!(err2.msg.contains("takes 2 arguments"), "{err2}");
    }

    #[test]
    fn error_duplicate_var() {
        let err = parse_system("var x in [0,1]; var x in [0,2];").unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn error_missing_relop() {
        let err = parse_system("var x in [0,1]; pc x + 1;").unwrap_err();
        assert!(err.msg.contains("relational operator"), "{err}");
    }

    #[test]
    fn error_position_reported() {
        let err = parse_system("var x in [0,1];\npc y < 1;").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn display_roundtrip() {
        // Expressions print variables as `v{i}`, so a system whose
        // variables are literally named that way round-trips exactly.
        let src = "var v0 in [0, 1];\nvar v1 in [-1, 1];\npc v0 < v1 && sin(v0 * v1) > 0.25;\npc v0 >= v1;";
        let s1 = sys(src);
        let printed = format!("{}{}", s1.domain, s1.constraint_set);
        let s2 = sys(&printed);
        assert_eq!(s2, s1);
    }

    #[test]
    fn scientific_notation_in_bounds() {
        let s = sys("var x in [1e-3, 2.5e2]; pc x > 1;");
        assert_eq!(s.domain.bounds(crate::VarId(0)), (0.001, 250.0));
    }
}
