//! Arithmetic expressions over input variables.
//!
//! Expressions are immutable trees shared through [`Arc`], so the symbolic
//! executor can substitute sub-expressions without copying. The function
//! inventory matches what the paper's subjects exercise: the four
//! arithmetic operators plus `sin`, `cos`, `tan`, `asin`, `acos`, `atan`,
//! `atan2`, `sqrt`, `exp`, `ln`, `pow`, `abs`, `min`, `max` (§6.3 lists
//! `cos`, `pow`, `sin`, `sqrt`, `tan`, `atan2` for TSAFE; Apollo uses
//! `sqrt`).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::VarId;

/// Unary operators and functions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Sine (radians).
    Sin,
    /// Cosine (radians).
    Cos,
    /// Tangent (radians).
    Tan,
    /// Arcsine.
    Asin,
    /// Arccosine.
    Acos,
    /// Arctangent.
    Atan,
}

impl UnOp {
    /// The source-syntax function name (`-` for negation).
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Ln => "ln",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Tan => "tan",
            UnOp::Asin => "asin",
            UnOp::Acos => "acos",
            UnOp::Atan => "atan",
        }
    }

    /// Applies the operator to a concrete value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
            UnOp::Exp => x.exp(),
            UnOp::Ln => x.ln(),
            UnOp::Sin => x.sin(),
            UnOp::Cos => x.cos(),
            UnOp::Tan => x.tan(),
            UnOp::Asin => x.asin(),
            UnOp::Acos => x.acos(),
            UnOp::Atan => x.atan(),
        }
    }
}

/// Binary operators and two-argument functions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Power `x^y`.
    Pow,
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Two-argument arctangent `atan2(y, x)`.
    Atan2,
}

impl BinOp {
    /// The source-syntax operator symbol or function name.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Atan2 => "atan2",
        }
    }

    /// Applies the operator to concrete values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Pow => a.powf(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Atan2 => a.atan2(b),
        }
    }

    /// Returns `true` for operators printed infix (`+ - * / ^`), `false`
    /// for two-argument functions (`min`, `max`, `atan2`).
    pub fn is_infix(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow
        )
    }
}

/// An arithmetic expression tree.
///
/// # Example
///
/// ```
/// use qcoral_constraints::{Expr, VarId};
///
/// // sin(x * y) with x = v0, y = v1
/// let e = Expr::var(VarId(0)).mul(Expr::var(VarId(1))).sin();
/// assert!((e.eval(&[1.0, 2.0]) - 2.0f64.sin()).abs() < 1e-12);
/// assert_eq!(e.to_string(), "sin(v0 * v1)");
/// ```
#[derive(Clone, Debug)]
pub enum Expr {
    /// A floating-point literal.
    Const(f64),
    /// An input variable.
    Var(VarId),
    /// A unary operator application.
    Unary(UnOp, Arc<Expr>),
    /// A binary operator application.
    Binary(BinOp, Arc<Expr>, Arc<Expr>),
}

impl Expr {
    /// Creates a constant expression.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn constant(v: f64) -> Expr {
        assert!(!v.is_nan(), "NaN constant in expression");
        Expr::Const(v)
    }

    /// Creates a variable reference.
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// Applies a unary operator.
    pub fn unary(op: UnOp, e: impl Into<Arc<Expr>>) -> Expr {
        Expr::Unary(op, e.into())
    }

    /// Applies a binary operator.
    pub fn binary(op: BinOp, a: impl Into<Arc<Expr>>, b: impl Into<Arc<Expr>>) -> Expr {
        Expr::Binary(op, a.into(), b.into())
    }

    /// Evaluates the expression on a concrete environment indexed by
    /// [`VarId`]. May return NaN or ±∞ (e.g. `sqrt` of a negative value);
    /// relational atoms treat NaN as "does not satisfy".
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `env`.
    pub fn eval(&self, env: &[f64]) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(id) => env[id.index()],
            Expr::Unary(op, e) => op.apply(e.eval(env)),
            Expr::Binary(op, a, b) => op.apply(a.eval(env), b.eval(env)),
        }
    }

    /// Adds every variable occurring in the expression to `out`.
    pub fn collect_vars(&self, out: &mut crate::VarSet) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(id) => {
                out.insert(*id);
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Largest variable index referenced, plus one (the minimum
    /// environment length needed to evaluate). `0` if no variables occur.
    pub fn var_bound(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(id) => id.index() + 1,
            Expr::Unary(_, e) => e.var_bound(),
            Expr::Binary(_, a, b) => a.var_bound().max(b.var_bound()),
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, e) => 1 + e.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Number of operation (non-leaf) nodes in the expression tree.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Unary(_, e) => 1 + e.op_count(),
            Expr::Binary(_, a, b) => 1 + a.op_count() + b.op_count(),
        }
    }

    /// Replaces every variable occurrence with the expression given by
    /// `subst` (indexed by `VarId`). Used by the symbolic executor to keep
    /// program state as expressions over the *input* variables.
    pub fn substitute(&self, subst: &[Arc<Expr>]) -> Arc<Expr> {
        match self {
            Expr::Const(_) => Arc::new(self.clone()),
            Expr::Var(id) => Arc::clone(&subst[id.index()]),
            Expr::Unary(op, e) => Arc::new(Expr::Unary(*op, e.substitute(subst))),
            Expr::Binary(op, a, b) => {
                Arc::new(Expr::Binary(*op, a.substitute(subst), b.substitute(subst)))
            }
        }
    }

    /// Rewrites every variable reference through `f`. Used to re-index a
    /// projected constraint onto a dense local variable space.
    pub fn remap_vars(&self, f: &impl Fn(VarId) -> VarId) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(id) => Expr::Var(f(*id)),
            Expr::Unary(op, e) => Expr::Unary(*op, Arc::new(e.remap_vars(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Arc::new(a.remap_vars(f)), Arc::new(b.remap_vars(f)))
            }
        }
    }

    /// Constant-folds the expression bottom-up. Folding uses ordinary
    /// `f64` arithmetic; sub-expressions that fold to NaN are left intact
    /// so the (NaN ⇒ unsatisfied) evaluation semantics are preserved.
    pub fn fold(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Unary(op, e) => {
                let e = e.fold();
                if let Expr::Const(v) = e {
                    let r = op.apply(v);
                    if !r.is_nan() {
                        return Expr::Const(r);
                    }
                }
                Expr::Unary(*op, Arc::new(e))
            }
            Expr::Binary(op, a, b) => {
                let a = a.fold();
                let b = b.fold();
                if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                    let r = op.apply(*x, *y);
                    if !r.is_nan() {
                        return Expr::Const(r);
                    }
                }
                Expr::Binary(*op, Arc::new(a), Arc::new(b))
            }
        }
    }

    // -------------------------------------------------------------
    // Builder methods (fluent DSL). These take `self` by value; `Expr`
    // clones are cheap because children are `Arc`-shared.
    // -------------------------------------------------------------

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, self, rhs)
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, self, rhs)
    }

    /// `self ^ rhs`.
    pub fn pow(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Pow, self, rhs)
    }

    /// `min(self, rhs)`.
    pub fn min_e(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Min, self, rhs)
    }

    /// `max(self, rhs)`.
    pub fn max_e(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Max, self, rhs)
    }

    /// `atan2(self, rhs)` — `self` is the y-coordinate.
    pub fn atan2(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Atan2, self, rhs)
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::unary(UnOp::Neg, self)
    }

    /// `abs(self)`.
    pub fn abs(self) -> Expr {
        Expr::unary(UnOp::Abs, self)
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::unary(UnOp::Sqrt, self)
    }

    /// `exp(self)`.
    pub fn exp(self) -> Expr {
        Expr::unary(UnOp::Exp, self)
    }

    /// `ln(self)`.
    pub fn ln(self) -> Expr {
        Expr::unary(UnOp::Ln, self)
    }

    /// `sin(self)`.
    pub fn sin(self) -> Expr {
        Expr::unary(UnOp::Sin, self)
    }

    /// `cos(self)`.
    pub fn cos(self) -> Expr {
        Expr::unary(UnOp::Cos, self)
    }

    /// `tan(self)`.
    pub fn tan(self) -> Expr {
        Expr::unary(UnOp::Tan, self)
    }

    /// `asin(self)`.
    pub fn asin(self) -> Expr {
        Expr::unary(UnOp::Asin, self)
    }

    /// `acos(self)`.
    pub fn acos(self) -> Expr {
        Expr::unary(UnOp::Acos, self)
    }

    /// `atan(self)`.
    pub fn atan(self) -> Expr {
        Expr::unary(UnOp::Atan, self)
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Const(v) if *v < 0.0 => 1,
            Expr::Const(_) | Expr::Var(_) => 4,
            Expr::Unary(UnOp::Neg, _) => 1,
            Expr::Unary(..) => 4,
            Expr::Binary(op, ..) if op.is_infix() => match op {
                BinOp::Add | BinOp::Sub => 1,
                BinOp::Mul | BinOp::Div => 2,
                BinOp::Pow => 3,
                _ => unreachable!(),
            },
            Expr::Binary(..) => 4,
        }
    }
}

impl From<f64> for Expr {
    /// Wraps a finite literal as a constant expression.
    ///
    /// # Panics
    ///
    /// Panics if the value is NaN.
    fn from(v: f64) -> Expr {
        Expr::constant(v)
    }
}

impl From<VarId> for Expr {
    fn from(id: VarId) -> Expr {
        Expr::Var(id)
    }
}

impl PartialEq for Expr {
    /// Structural equality; constants compare by bit pattern so that the
    /// relation is a proper equivalence (consistent with the [`Hash`]
    /// impl) and usable as a cache key.
    fn eq(&self, other: &Expr) -> bool {
        match (self, other) {
            (Expr::Const(a), Expr::Const(b)) => a.to_bits() == b.to_bits(),
            (Expr::Var(a), Expr::Var(b)) => a == b,
            (Expr::Unary(o1, e1), Expr::Unary(o2, e2)) => o1 == o2 && e1 == e2,
            (Expr::Binary(o1, a1, b1), Expr::Binary(o2, a2, b2)) => {
                o1 == o2 && a1 == a2 && b1 == b2
            }
            _ => false,
        }
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Expr::Const(v) => v.to_bits().hash(state),
            Expr::Var(id) => id.hash(state),
            Expr::Unary(op, e) => {
                op.hash(state);
                e.hash(state);
            }
            Expr::Binary(op, a, b) => {
                op.hash(state);
                a.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Prints in the surface syntax accepted by the parser, with minimal
    /// parenthesisation. Variables print as `v{index}`; use
    /// [`crate::atom::pretty_expr`] for named output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_child(
            f: &mut fmt::Formatter<'_>,
            child: &Expr,
            parent_prec: u8,
            tighten: bool,
        ) -> fmt::Result {
            let child_prec = child.precedence();
            let needs_parens = child_prec < parent_prec || (tighten && child_prec == parent_prec);
            if needs_parens {
                write!(f, "({child})")
            } else {
                write!(f, "{child}")
            }
        }

        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(id) => write!(f, "{id}"),
            Expr::Unary(UnOp::Neg, e) => {
                write!(f, "-")?;
                write_child(f, e, 3, false)
            }
            Expr::Unary(op, e) => write!(f, "{}({e})", op.name()),
            Expr::Binary(op, a, b) if op.is_infix() => {
                let prec = self.precedence();
                write_child(f, a, prec, false)?;
                write!(f, " {} ", op.name())?;
                // Right child needs parens at equal precedence for the
                // left-associative operators (a - (b - c)).
                write_child(f, b, prec, matches!(op, BinOp::Sub | BinOp::Div))
            }
            Expr::Binary(op, a, b) => write!(f, "{}({a}, {b})", op.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSet;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn y() -> Expr {
        Expr::var(VarId(1))
    }

    #[test]
    fn eval_arithmetic() {
        let e = x().add(y().mul(Expr::constant(2.0)));
        assert_eq!(e.eval(&[1.0, 3.0]), 7.0);
    }

    #[test]
    fn eval_transcendental() {
        let e = x()
            .sin()
            .pow(Expr::constant(2.0))
            .add(x().cos().pow(Expr::constant(2.0)));
        assert!((e.eval(&[0.7]) - 1.0).abs() < 1e-12);
        let a = y().atan2(x());
        assert!((a.eval(&[1.0, 1.0]) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn eval_nan_propagates() {
        let e = x().sqrt();
        assert!(e.eval(&[-1.0]).is_nan());
    }

    #[test]
    fn collect_vars_and_bound() {
        let e = x().add(Expr::var(VarId(3)).sin());
        let mut s = VarSet::new(4);
        e.collect_vars(&mut s);
        assert!(s.contains(VarId(0)));
        assert!(s.contains(VarId(3)));
        assert_eq!(s.count(), 2);
        assert_eq!(e.var_bound(), 4);
        assert_eq!(Expr::constant(1.0).var_bound(), 0);
    }

    #[test]
    fn substitution() {
        // state: a := x + 1; then expression a * a over state
        let a_val: Arc<Expr> = x().add(Expr::constant(1.0)).into();
        let e = x().mul(x()); // a * a with a at index 0
        let sub = e.substitute(&[a_val]);
        assert_eq!(sub.eval(&[2.0]), 9.0);
    }

    #[test]
    fn folding() {
        let e = Expr::constant(2.0).add(Expr::constant(3.0)).mul(x());
        let f = e.fold();
        assert_eq!(f, Expr::constant(5.0).mul(x()));
        // NaN results are not folded away.
        let g = Expr::constant(-1.0).sqrt().fold();
        assert!(matches!(g, Expr::Unary(UnOp::Sqrt, _)));
    }

    #[test]
    fn display_precedence() {
        let e = x().add(y()).mul(Expr::constant(2.0));
        assert_eq!(e.to_string(), "(v0 + v1) * 2");
        let e2 = x().sub(y().sub(Expr::constant(1.0)));
        assert_eq!(e2.to_string(), "v0 - (v1 - 1)");
        let e3 = x().neg().mul(y());
        assert_eq!(e3.to_string(), "(-v0) * v1");
        let e4 = y().atan2(x());
        assert_eq!(e4.to_string(), "atan2(v1, v0)");
        let e5 = x().pow(Expr::constant(2.0)).neg();
        assert_eq!(e5.to_string(), "-v0 ^ 2");
    }

    #[test]
    fn structural_eq_and_hash() {
        use std::collections::HashSet;
        let a = x().sin().add(Expr::constant(1.0));
        let b = x().sin().add(Expr::constant(1.0));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert_ne!(x().sin(), x().cos());
        assert_ne!(Expr::constant(0.0), Expr::constant(-0.0));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(x().size(), 1);
        assert_eq!(x().add(y()).size(), 3);
        assert_eq!(x().add(y()).sin().size(), 4);
    }
}
