//! Lexer for the constraint language (and reused by the `qcoral-symexec`
//! mini-language front end — keywords are resolved at the parser level, so
//! one token stream serves both grammars).

use std::fmt;

/// A source position (1-based line and column), for error messages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Punctuation and operator tokens.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Not,
    Assign,
}

impl Sym {
    /// Source text of the symbol.
    pub fn as_str(self) -> &'static str {
        match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::LBracket => "[",
            Sym::RBracket => "]",
            Sym::LBrace => "{",
            Sym::RBrace => "}",
            Sym::Comma => ",",
            Sym::Semi => ";",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Star => "*",
            Sym::Slash => "/",
            Sym::Caret => "^",
            Sym::Lt => "<",
            Sym::Le => "<=",
            Sym::Gt => ">",
            Sym::Ge => ">=",
            Sym::EqEq => "==",
            Sym::Ne => "!=",
            Sym::AndAnd => "&&",
            Sym::OrOr => "||",
            Sym::Not => "!",
            Sym::Assign => "=",
        }
    }
}

/// A lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// Punctuation/operator.
    Sym(Sym),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Num(v) => write!(f, "number {v}"),
            Token::Sym(s) => write!(f, "`{}`", s.as_str()),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing or parsing error with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Where the error occurred.
    pub pos: Pos,
}

impl ParseError {
    /// Creates an error at the given position.
    pub fn new(msg: impl Into<String>, pos: Pos) -> ParseError {
        ParseError {
            msg: msg.into(),
            pos,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes `src`, returning tokens paired with their positions. Line
/// comments start with `#` or `//` and run to end of line.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed numbers or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<(Token, Pos)>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                out.push((Token::Ident(src[start..i].to_owned()), pos));
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        while i < j {
                            bump!();
                        }
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            bump!();
                        }
                    }
                }
                let text = &src[start..i];
                let v: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("malformed number `{text}`"), pos))?;
                out.push((Token::Num(v), pos));
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let sym2 = match two {
                    "<=" => Some(Sym::Le),
                    ">=" => Some(Sym::Ge),
                    "==" => Some(Sym::EqEq),
                    "!=" => Some(Sym::Ne),
                    "&&" => Some(Sym::AndAnd),
                    "||" => Some(Sym::OrOr),
                    _ => None,
                };
                if let Some(s) = sym2 {
                    bump!();
                    bump!();
                    out.push((Token::Sym(s), pos));
                    continue;
                }
                let sym1 = match c {
                    b'(' => Sym::LParen,
                    b')' => Sym::RParen,
                    b'[' => Sym::LBracket,
                    b']' => Sym::RBracket,
                    b'{' => Sym::LBrace,
                    b'}' => Sym::RBrace,
                    b',' => Sym::Comma,
                    b';' => Sym::Semi,
                    b'+' => Sym::Plus,
                    b'-' => Sym::Minus,
                    b'*' => Sym::Star,
                    b'/' => Sym::Slash,
                    b'^' => Sym::Caret,
                    b'<' => Sym::Lt,
                    b'>' => Sym::Gt,
                    b'!' => Sym::Not,
                    b'=' => Sym::Assign,
                    _ => {
                        return Err(ParseError::new(
                            format!("unexpected character `{}`", c as char),
                            pos,
                        ))
                    }
                };
                bump!();
                out.push((Token::Sym(sym1), pos));
            }
        }
    }
    out.push((Token::Eof, Pos { line, col }));
    Ok(out)
}

/// A cursor over a token stream with convenience accessors, shared by the
/// constraint parser and the mini-language parser.
#[derive(Debug)]
pub struct TokenStream {
    toks: Vec<(Token, Pos)>,
    at: usize,
}

impl TokenStream {
    /// Lexes `src` into a stream.
    ///
    /// # Errors
    ///
    /// Propagates lexing errors.
    pub fn new(src: &str) -> Result<TokenStream, ParseError> {
        Ok(TokenStream {
            toks: lex(src)?,
            at: 0,
        })
    }

    /// The current token.
    pub fn peek(&self) -> &Token {
        &self.toks[self.at].0
    }

    /// Position of the current token.
    pub fn pos(&self) -> Pos {
        self.toks[self.at].1
    }

    /// Advances and returns the previous current token.
    pub fn next(&mut self) -> Token {
        let t = self.toks[self.at].0.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    /// Consumes the given symbol or errors.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the expected symbol.
    pub fn expect_sym(&mut self, s: Sym) -> Result<(), ParseError> {
        if self.peek() == &Token::Sym(s) {
            self.next();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{}`, found {}", s.as_str(), self.peek()),
                self.pos(),
            ))
        }
    }

    /// Consumes the current token if it equals the symbol.
    pub fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == &Token::Sym(s) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consumes the current token if it is the given keyword/identifier.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consumes an identifier or errors.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the current token is not an identifier.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            t => Err(ParseError::new(
                format!("expected identifier, found {t}"),
                self.pos(),
            )),
        }
    }

    /// Consumes a (possibly negated) numeric literal or errors.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if no number is present.
    pub fn expect_num(&mut self) -> Result<f64, ParseError> {
        let neg = self.eat_sym(Sym::Minus);
        match self.next() {
            Token::Num(v) => Ok(if neg { -v } else { v }),
            t => Err(ParseError::new(
                format!("expected number, found {t}"),
                self.pos(),
            )),
        }
    }

    /// Returns `true` at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lex_symbols() {
        assert_eq!(
            toks("<= >= == != && || < > ! ="),
            vec![
                Token::Sym(Sym::Le),
                Token::Sym(Sym::Ge),
                Token::Sym(Sym::EqEq),
                Token::Sym(Sym::Ne),
                Token::Sym(Sym::AndAnd),
                Token::Sym(Sym::OrOr),
                Token::Sym(Sym::Lt),
                Token::Sym(Sym::Gt),
                Token::Sym(Sym::Not),
                Token::Sym(Sym::Assign),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            toks("1 2.5 0.25 1e3 2.5e-2 7E+1"),
            vec![
                Token::Num(1.0),
                Token::Num(2.5),
                Token::Num(0.25),
                Token::Num(1000.0),
                Token::Num(0.025),
                Token::Num(70.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_identifiers_and_comments() {
        assert_eq!(
            toks("alpha _x9 # comment to eol\nbeta // also comment\ngamma"),
            vec![
                Token::Ident("alpha".into()),
                Token::Ident("_x9".into()),
                Token::Ident("beta".into()),
                Token::Ident("gamma".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_positions() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].1, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].1, Pos { line: 2, col: 3 });
    }

    #[test]
    fn lex_rejects_garbage() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.msg.contains("unexpected character"));
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
    }

    #[test]
    fn stream_helpers() {
        let mut s = TokenStream::new("var x = 1;").unwrap();
        assert!(s.eat_kw("var"));
        assert_eq!(s.expect_ident().unwrap(), "x");
        assert!(s.eat_sym(Sym::Assign));
        assert_eq!(s.expect_num().unwrap(), 1.0);
        assert!(s.eat_sym(Sym::Semi));
        assert!(s.at_eof());
    }

    #[test]
    fn negative_number_via_expect_num() {
        let mut s = TokenStream::new("-3.5").unwrap();
        assert_eq!(s.expect_num().unwrap(), -3.5);
    }

    #[test]
    fn division_not_mistaken_for_comment() {
        assert_eq!(
            toks("a / b"),
            vec![
                Token::Ident("a".into()),
                Token::Sym(Sym::Slash),
                Token::Ident("b".into()),
                Token::Eof,
            ]
        );
    }
}
