//! Compact sets of variables, used by the dependency analysis (paper §4.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::VarId;

/// A fixed-capacity bitset over variable indices.
///
/// # Example
///
/// ```
/// use qcoral_constraints::{VarId, VarSet};
///
/// let mut s = VarSet::new(8);
/// s.insert(VarId(1));
/// s.insert(VarId(5));
/// assert!(s.contains(VarId(5)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![VarId(1), VarId(5)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarSet {
    len: usize,
    words: Vec<u64>,
}

impl VarSet {
    /// Creates an empty set with capacity for `len` variables.
    pub fn new(len: usize) -> VarSet {
        VarSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Capacity (number of variable slots).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts a variable. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the variable index exceeds the capacity.
    pub fn insert(&mut self, v: VarId) -> bool {
        let i = v.index();
        assert!(
            i < self.len,
            "variable {v} out of range for VarSet({})",
            self.len
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Tests membership. Out-of-range ids are never members.
    pub fn contains(&self, v: VarId) -> bool {
        let i = v.index();
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &VarSet) {
        assert_eq!(self.len, other.len, "VarSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns `true` if the two sets share at least one member.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersects(&self, other: &VarSet) -> bool {
        assert_eq!(self.len, other.len, "VarSet capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(VarId((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Collects members into a vector of raw indices (convenient for
    /// projections).
    pub fn indices(&self) -> Vec<usize> {
        self.iter().map(VarId::index).collect()
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<VarId> for VarSet {
    /// Builds a set sized to the maximum inserted index.
    fn from_iter<T: IntoIterator<Item = VarId>>(iter: T) -> VarSet {
        let ids: Vec<VarId> = iter.into_iter().collect();
        let cap = ids.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut s = VarSet::new(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = VarSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(VarId(0)));
        assert!(s.insert(VarId(63)));
        assert!(s.insert(VarId(64)));
        assert!(s.insert(VarId(99)));
        assert!(!s.insert(VarId(99)));
        assert_eq!(s.count(), 4);
        assert!(s.contains(VarId(63)));
        assert!(!s.contains(VarId(62)));
        assert!(!s.contains(VarId(200)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = VarSet::new(4);
        s.insert(VarId(4));
    }

    #[test]
    fn union_and_intersects() {
        let mut a = VarSet::new(70);
        let mut b = VarSet::new(70);
        a.insert(VarId(1));
        b.insert(VarId(65));
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(VarId(65)));
        assert!(a.intersects(&b));
    }

    #[test]
    fn iter_in_order() {
        let mut s = VarSet::new(130);
        for i in [128, 3, 64, 5] {
            s.insert(VarId(i));
        }
        let got: Vec<u32> = s.iter().map(|v| v.0).collect();
        assert_eq!(got, vec![3, 5, 64, 128]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: VarSet = [VarId(2), VarId(7)].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert!(s.contains(VarId(7)));
    }

    #[test]
    fn display() {
        let s: VarSet = [VarId(0), VarId(2)].into_iter().collect();
        assert_eq!(s.to_string(), "{v0, v2}");
    }
}
