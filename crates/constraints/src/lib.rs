//! Constraint intermediate representation for the qCORAL reproduction.
//!
//! The qCORAL pipeline (paper §3, Figure 1) consumes a *disjunction of path
//! conditions* produced by symbolic execution, where each path condition is
//! a *conjunction of mathematical inequalities* over bounded floating-point
//! input variables. This crate defines that representation:
//!
//! * [`Expr`] — arithmetic expressions over input variables, including the
//!   non-linear and transcendental functions exercised by the paper's
//!   benchmarks (`sin`, `cos`, `tan`, `atan2`, `sqrt`, `pow`, `exp`, `log`).
//! * [`Atom`] — a single relational constraint `lhs ⋈ rhs`.
//! * [`PathCondition`] — a conjunction of atoms.
//! * [`ConstraintSet`] — a disjunction of (pairwise disjoint) path
//!   conditions, the `PCT` set of the paper.
//! * [`Domain`] — the bounded input box plus variable names.
//! * [`VarSet`] — compact variable sets used by the dependency analysis of
//!   paper §4.2 (Definition 1).
//! * [`parse::parse_system`] — a parser for a small textual constraint
//!   language, so benchmarks can be stored as data.
//!
//! # Example
//!
//! ```
//! use qcoral_constraints::parse::parse_system;
//!
//! let sys = parse_system(
//!     "var altitude in [0, 20000];
//!      var headFlap in [-10, 10];
//!      var tailFlap in [-10, 10];
//!      pc altitude > 9000;
//!      pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
//! ).unwrap();
//! assert_eq!(sys.constraint_set.pcs().len(), 2);
//! assert!(sys.constraint_set.holds(&[9500.0, 0.0, 0.0]));
//! ```

#![warn(missing_docs)]
// The expression-builder methods (`add`, `mul`, `neg`, ...) deliberately
// consume `self` and mirror the surface syntax; implementing the std ops
// traits instead would force reference-heavy call sites everywhere.
#![allow(clippy::should_implement_trait)]

pub mod atom;
pub mod bulk;
pub mod ctape;
pub mod domain;
pub mod expr;
pub mod ival;
#[cfg(feature = "jit")]
pub mod jit;
pub mod lexer;
pub mod parse;
pub mod varset;

pub use atom::{Atom, ConstraintSet, PathCondition, RelOp};
pub use bulk::{BulkScratch, BulkTape, LANES};
pub use ctape::{expr_fingerprint, EvalTape, Node};
pub use domain::{Domain, VarId};
pub use expr::{BinOp, Expr, UnOp};
pub use ival::{IntervalTape, IvalScratch};
pub use varset::VarSet;
