//! Columnar bulk evaluation: register-allocated slice tapes.
//!
//! [`EvalTape::holds_with`] interprets the
//! compiled DAG one sample at a time: every node pays a `match` dispatch,
//! a bounds check and a `Vec` push *per sample*, and the scratch grows to
//! one slot per node — cache-hostile on the symexec-generated tapes where
//! nodes number in the thousands. Since the Monte Carlo engines call the
//! predicate once per sample and samples come in chunks anyway, the
//! dispatch can be amortized across a whole *lane chunk*:
//!
//! [`BulkTape`] recompiles an [`EvalTape`] into a linear
//! instruction stream that evaluates each operation over [`LANES`]
//! samples at once, in simple indexed loops the compiler auto-vectorizes
//! (the technique of float-slice evaluators in implicit-surface engines
//! such as `fidget`). Two analyses shrink and speed up the scratch:
//!
//! * **last-use liveness + register allocation** — instead of one scratch
//!   slot per node, values live in a small file of reusable lane
//!   registers (a register is released at the last instruction that reads
//!   it), so the working set stays cache-resident no matter how large the
//!   DAG is;
//! * **per-atom masks with all-false early exit** — each relational atom
//!   compares two registers into a 128-bit hit mask; masks AND together,
//!   and when no lane can still satisfy the conjunction the remaining
//!   instructions are skipped (the columnar analogue of the scalar
//!   early-exit, at chunk granularity).
//!
//! Semantics are *exactly* those of the scalar tape, hit for hit: lanes
//! apply the same `f64` operations in the same order as
//! [`EvalTape::holds`] would per sample, NaN on
//! either side of an atom yields a miss (including `!=`), and the empty
//! conjunction is true. The samplers in `qcoral-mc` rely on this
//! equivalence to keep bulk estimates bit-identical to the scalar path;
//! `crates/constraints/tests/bulk_equiv.rs` pins it on random DAGs.

use std::cell::RefCell;

use crate::ctape::Node;
use crate::{BinOp, EvalTape, RelOp, UnOp};

/// Lane width of the bulk evaluator: each instruction processes up to
/// this many samples. 128 f64 lanes = 1 KiB per register — a register
/// file of a few dozen registers stays comfortably inside L1/L2 — and
/// matches the 128-bit hit masks.
pub const LANES: usize = 128;

/// One instruction of a compiled bulk tape. Register indices address the
/// lane-register file; the allocator guarantees `dst` is distinct from
/// the instruction's sources, so evaluation can split the file into one
/// mutable destination and shared sources without aliasing.
///
/// Crate-visible so [`crate::jit`] can translate the exact same stream —
/// schedule, register assignment and early-exit points included — into
/// native code.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Inst {
    /// Broadcast a constant across the destination register.
    Const { dst: u32, value: f64 },
    /// Load a contiguous slice of an input column.
    Var { dst: u32, var: u32 },
    /// Lane-wise unary operation.
    Un { op: UnOp, dst: u32, src: u32 },
    /// Lane-wise binary operation.
    Bin { op: BinOp, dst: u32, a: u32, b: u32 },
    /// Compare two registers lane-wise and AND the result into the
    /// running hit mask (an atom boundary; all-false masks early-exit).
    Cmp { op: RelOp, a: u32, b: u32 },
}

/// Reusable lane-register scratch for [`BulkTape`] evaluation. Grows to
/// the largest register file it has served and is then allocation-free;
/// one scratch may serve tapes of any size.
#[derive(Debug, Default)]
pub struct BulkScratch {
    regs: Vec<Vec<f64>>,
}

impl BulkScratch {
    /// An empty scratch (registers are allocated on first use).
    pub fn new() -> BulkScratch {
        BulkScratch::default()
    }

    fn ensure(&mut self, nregs: usize) {
        while self.regs.len() < nregs {
            self.regs.push(vec![0.0; LANES]);
        }
    }
}

/// A register-allocated columnar tape compiled from an [`EvalTape`].
///
/// Evaluation consumes *columns*: `cols[v][i]` is variable `v` of sample
/// `i` (structure-of-arrays layout). [`BulkTape::count_hits`] processes
/// samples in [`LANES`]-wide slabs and returns how many satisfied the
/// conjunction — bit-for-bit the number of samples on which
/// [`EvalTape::holds`] returns `true`.
///
/// # Example
///
/// ```
/// use qcoral_constraints::bulk::BulkTape;
/// use qcoral_constraints::parse::parse_system;
/// use qcoral_constraints::EvalTape;
///
/// let sys = parse_system("var x in [0, 1]; pc sin(x) > 0.5 && x < 0.9;").unwrap();
/// let pc = &sys.constraint_set.pcs()[0];
/// let tape = EvalTape::compile(pc);
/// let bulk = BulkTape::compile(&tape);
/// let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
/// let scalar = xs.iter().filter(|&&x| tape.holds(&[x])).count() as u64;
/// assert_eq!(bulk.count_hits(&[xs], 1000), scalar);
/// ```
#[derive(Clone, Debug)]
pub struct BulkTape {
    insts: Vec<Inst>,
    nregs: usize,
    natoms: usize,
    /// Minimum number of input columns (largest variable index + 1).
    nvars: usize,
}

impl BulkTape {
    /// Recompiles a scalar tape into register-allocated bulk form.
    ///
    /// The instruction stream interleaves node evaluations with atom
    /// comparisons in the scalar tape's lazy order (nodes are emitted
    /// just before the first atom whose operand ids cover them, so an
    /// early-exiting mask skips exactly the work the scalar path would
    /// skip — at slab granularity) and assigns registers by last-use
    /// liveness. Every pool node is read by a later node or atom:
    /// [`EvalTape::compile`] interns nodes only while emitting atom
    /// operands, so the pool *is* the operand closure — there are no
    /// dead nodes to prune (the allocator debug-asserts this).
    pub fn compile(tape: &EvalTape) -> BulkTape {
        let nodes = tape.nodes();
        let atoms = tape.atom_nodes();

        // Linear schedule: each atom is preceded by the not-yet-emitted
        // nodes with ids below its operands', in id order — children
        // before parents by the tape's topological invariant, and the
        // same node order the scalar evaluator uses.
        enum Sched {
            Node(u32),
            Atom(usize),
        }
        let mut sched = Vec::new();
        let mut emitted = 0usize;
        for (k, &(l, _, r)) in atoms.iter().enumerate() {
            let need = (l.max(r) as usize) + 1;
            while emitted < need {
                sched.push(Sched::Node(emitted as u32));
                emitted += 1;
            }
            sched.push(Sched::Atom(k));
        }

        // Last schedule position reading each node's value.
        let mut last_use = vec![usize::MAX; nodes.len()];
        for (p, s) in sched.iter().enumerate() {
            match *s {
                Sched::Node(id) => match nodes[id as usize] {
                    Node::Unary(_, c) => last_use[c as usize] = p,
                    Node::Binary(_, a, b) => {
                        last_use[a as usize] = p;
                        last_use[b as usize] = p;
                    }
                    Node::Const(_) | Node::Var(_) => {}
                },
                Sched::Atom(k) => {
                    let (l, _, r) = atoms[k];
                    last_use[l as usize] = p;
                    last_use[r as usize] = p;
                }
            }
        }

        // Forward register allocation. A destination register is drawn
        // from the free list *before* the instruction's sources are
        // released, so `dst` never aliases a source (which lets the
        // evaluator split the register file borrow-safely) at the cost
        // of at most one extra register.
        let mut reg_of = vec![u32::MAX; nodes.len()];
        let mut free: Vec<u32> = Vec::new();
        let mut nregs = 0u32;
        let mut insts = Vec::with_capacity(sched.len());
        let mut nvars = 0usize;
        let release = |ids: &[u32], p: usize, free: &mut Vec<u32>, reg_of: &[u32]| {
            for (i, &id) in ids.iter().enumerate() {
                // Dedup `a == b` operands: release a register once.
                if last_use[id as usize] == p && !ids[..i].contains(&id) {
                    free.push(reg_of[id as usize]);
                }
            }
        };
        for (p, s) in sched.iter().enumerate() {
            match *s {
                Sched::Node(id) => {
                    debug_assert!(
                        last_use[id as usize] != usize::MAX,
                        "EvalTape pool contains a node no atom reads"
                    );
                    let node = nodes[id as usize];
                    let dst = free.pop().unwrap_or_else(|| {
                        nregs += 1;
                        nregs - 1
                    });
                    reg_of[id as usize] = dst;
                    match node {
                        Node::Const(value) => insts.push(Inst::Const { dst, value }),
                        Node::Var(v) => {
                            nvars = nvars.max(v as usize + 1);
                            insts.push(Inst::Var { dst, var: v });
                        }
                        Node::Unary(op, c) => {
                            insts.push(Inst::Un {
                                op,
                                dst,
                                src: reg_of[c as usize],
                            });
                            release(&[c], p, &mut free, &reg_of);
                        }
                        Node::Binary(op, a, b) => {
                            insts.push(Inst::Bin {
                                op,
                                dst,
                                a: reg_of[a as usize],
                                b: reg_of[b as usize],
                            });
                            release(&[a, b], p, &mut free, &reg_of);
                        }
                    }
                }
                Sched::Atom(k) => {
                    let (l, op, r) = atoms[k];
                    insts.push(Inst::Cmp {
                        op,
                        a: reg_of[l as usize],
                        b: reg_of[r as usize],
                    });
                    release(&[l, r], p, &mut free, &reg_of);
                }
            }
        }

        BulkTape {
            insts,
            nregs: nregs as usize,
            natoms: atoms.len(),
            nvars,
        }
    }

    /// Size of the lane-register file (typically far smaller than the
    /// node count — liveness lets registers be reused).
    pub fn num_registers(&self) -> usize {
        self.nregs
    }

    /// Instruction count (needed node evaluations plus one comparison
    /// per atom).
    pub fn num_instructions(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` for the empty (always-true) conjunction.
    pub fn is_empty(&self) -> bool {
        self.natoms == 0
    }

    /// Minimum number of input columns evaluation requires.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// The register-allocated instruction stream, in evaluation order.
    /// Consumed by [`crate::jit`] so native kernels share this tape's
    /// schedule and early-exit structure exactly.
    #[cfg(feature = "jit")]
    pub(crate) fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Evaluates one slab of `w <= LANES` samples starting at column
    /// offset `off`, returning the hit mask (bit `i` set ⇔ sample
    /// `off + i` satisfies every atom).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `w > LANES`, if any column is shorter than
    /// `off + w`, or if fewer than [`BulkTape::num_vars`] columns are
    /// supplied (the columnar analogue of the scalar out-of-range
    /// variable panic).
    pub fn hit_mask(
        &self,
        cols: &[Vec<f64>],
        off: usize,
        w: usize,
        scratch: &mut BulkScratch,
    ) -> u128 {
        assert!(
            (1..=LANES).contains(&w),
            "slab width {w} out of 1..={LANES}"
        );
        assert!(
            cols.len() >= self.nvars,
            "tape reads {} columns, {} supplied",
            self.nvars,
            cols.len()
        );
        scratch.ensure(self.nregs);
        let regs = &mut scratch.regs[..];
        let mut mask: u128 = if w == LANES { !0 } else { (1u128 << w) - 1 };
        for inst in &self.insts {
            match *inst {
                Inst::Const { dst, value } => {
                    regs[dst as usize][..w].fill(value);
                }
                Inst::Var { dst, var } => {
                    regs[dst as usize][..w].copy_from_slice(&cols[var as usize][off..off + w]);
                }
                Inst::Un { op, dst, src } => {
                    let (d, s, _) = dst_srcs(regs, dst, src, src, w);
                    unary_lanes(op, d, s);
                }
                Inst::Bin { op, dst, a, b } => {
                    let (d, a, b) = dst_srcs(regs, dst, a, b, w);
                    binary_lanes(op, d, a, b);
                }
                Inst::Cmp { op, a, b } => {
                    mask &= cmp_mask(op, &regs[a as usize][..w], &regs[b as usize][..w]);
                    if mask == 0 {
                        return 0;
                    }
                }
            }
        }
        mask
    }

    /// Counts the samples among the first `n` (columnar layout) that
    /// satisfy the conjunction, processing [`LANES`]-wide slabs with a
    /// trailing partial slab when `n` is not a multiple of the lane
    /// width. `n == 0` returns 0; the empty conjunction counts every
    /// sample.
    ///
    /// # Panics
    ///
    /// As [`BulkTape::hit_mask`] (short columns, missing columns).
    pub fn count_hits_with(&self, cols: &[Vec<f64>], n: usize, scratch: &mut BulkScratch) -> u64 {
        let mut hits = 0u64;
        let mut off = 0usize;
        while off < n {
            let w = LANES.min(n - off);
            hits += self.hit_mask(cols, off, w, scratch).count_ones() as u64;
            off += w;
        }
        hits
    }

    /// [`BulkTape::count_hits_with`] over a thread-local scratch —
    /// allocation-free after warm-up on each thread (shared by all tapes
    /// on the thread; the scratch grows to the largest register file
    /// seen).
    pub fn count_hits(&self, cols: &[Vec<f64>], n: usize) -> u64 {
        thread_local! {
            static SCRATCH: RefCell<BulkScratch> = RefCell::new(BulkScratch::new());
        }
        SCRATCH.with(|s| self.count_hits_with(cols, n, &mut s.borrow_mut()))
    }
}

/// Splits the register file into the destination register (mutable) and
/// two source registers (shared), all sliced to the active lane width.
/// The compiler guarantees `dst != a` and `dst != b`; `a` may equal `b`.
fn dst_srcs(
    regs: &mut [Vec<f64>],
    dst: u32,
    a: u32,
    b: u32,
    w: usize,
) -> (&mut [f64], &[f64], &[f64]) {
    let d = dst as usize;
    debug_assert!(d != a as usize && d != b as usize, "dst aliases a source");
    let (before, rest) = regs.split_at_mut(d);
    let (dreg, after) = rest.split_first_mut().expect("dst register in range");
    let before = &*before;
    let after = &*after;
    let pick = |i: u32| -> &[f64] {
        let i = i as usize;
        if i < d {
            &before[i][..w]
        } else {
            &after[i - d - 1][..w]
        }
    };
    (&mut dreg[..w], pick(a), pick(b))
}

/// Fixed chunk width of the `lane-kernel` inner loops: small enough to
/// stay register-resident, wide enough for the autovectorizer to fill a
/// vector unit from one chunk body.
#[cfg(feature = "lane-kernel")]
const LANE_CHUNK: usize = 8;

/// Lane-loop driver for the unary kernels. With the `lane-kernel`
/// feature the loop runs in fixed-width chunks whose trip count is a
/// compile-time constant, plus a scalar tail; each lane still applies
/// the same `f64` operation in the same order, so results are
/// bit-identical with the feature on or off.
#[cfg(feature = "lane-kernel")]
#[inline(always)]
fn map1(d: &mut [f64], s: &[f64], f: impl Fn(f64) -> f64) {
    let n = d.len().min(s.len());
    let split = n - n % LANE_CHUNK;
    let (dc, dr) = d[..n].split_at_mut(split);
    let (sc, sr) = s[..n].split_at(split);
    for (dch, sch) in dc
        .chunks_exact_mut(LANE_CHUNK)
        .zip(sc.chunks_exact(LANE_CHUNK))
    {
        for i in 0..LANE_CHUNK {
            dch[i] = f(sch[i]);
        }
    }
    for (d, &x) in dr.iter_mut().zip(sr) {
        *d = f(x);
    }
}

#[cfg(not(feature = "lane-kernel"))]
#[inline(always)]
fn map1(d: &mut [f64], s: &[f64], f: impl Fn(f64) -> f64) {
    for (d, &x) in d.iter_mut().zip(s) {
        *d = f(x);
    }
}

/// Lane-loop driver for the binary kernels; see [`map1`] for the
/// `lane-kernel` chunking contract.
#[cfg(feature = "lane-kernel")]
#[inline(always)]
fn map2(d: &mut [f64], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) {
    let n = d.len().min(a.len()).min(b.len());
    let split = n - n % LANE_CHUNK;
    let (dc, dr) = d[..n].split_at_mut(split);
    let (ac, ar) = a[..n].split_at(split);
    let (bc, br) = b[..n].split_at(split);
    for ((dch, ach), bch) in dc
        .chunks_exact_mut(LANE_CHUNK)
        .zip(ac.chunks_exact(LANE_CHUNK))
        .zip(bc.chunks_exact(LANE_CHUNK))
    {
        for i in 0..LANE_CHUNK {
            dch[i] = f(ach[i], bch[i]);
        }
    }
    for ((d, &x), &y) in dr.iter_mut().zip(ar).zip(br) {
        *d = f(x, y);
    }
}

#[cfg(not(feature = "lane-kernel"))]
#[inline(always)]
fn map2(d: &mut [f64], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) {
    for ((d, &x), &y) in d.iter_mut().zip(a).zip(b) {
        *d = f(x, y);
    }
}

/// Applies a unary operation lane-wise. The `match` is hoisted out of
/// the loop so each arm is a tight, auto-vectorizable kernel calling the
/// *same* `f64` operation as [`UnOp::apply`] — lanes stay bit-identical
/// to the scalar path.
fn unary_lanes(op: UnOp, d: &mut [f64], s: &[f64]) {
    macro_rules! lanes {
        (|$x:ident| $e:expr) => {
            map1(d, s, |$x| $e)
        };
    }
    match op {
        UnOp::Neg => lanes!(|x| -x),
        UnOp::Abs => lanes!(|x| x.abs()),
        UnOp::Sqrt => lanes!(|x| x.sqrt()),
        UnOp::Exp => lanes!(|x| x.exp()),
        UnOp::Ln => lanes!(|x| x.ln()),
        UnOp::Sin => lanes!(|x| x.sin()),
        UnOp::Cos => lanes!(|x| x.cos()),
        UnOp::Tan => lanes!(|x| x.tan()),
        UnOp::Asin => lanes!(|x| x.asin()),
        UnOp::Acos => lanes!(|x| x.acos()),
        UnOp::Atan => lanes!(|x| x.atan()),
    }
}

/// Applies a binary operation lane-wise (dispatch hoisted, kernels
/// bit-identical to [`BinOp::apply`]).
fn binary_lanes(op: BinOp, d: &mut [f64], a: &[f64], b: &[f64]) {
    macro_rules! lanes {
        (|$x:ident, $y:ident| $e:expr) => {
            map2(d, a, b, |$x, $y| $e)
        };
    }
    match op {
        BinOp::Add => lanes!(|x, y| x + y),
        BinOp::Sub => lanes!(|x, y| x - y),
        BinOp::Mul => lanes!(|x, y| x * y),
        BinOp::Div => lanes!(|x, y| x / y),
        BinOp::Pow => lanes!(|x, y| x.powf(y)),
        BinOp::Min => lanes!(|x, y| x.min(y)),
        BinOp::Max => lanes!(|x, y| x.max(y)),
        BinOp::Atan2 => lanes!(|x, y| x.atan2(y)),
    }
}

/// Compares two registers lane-wise into a hit mask. NaN on either side
/// is a miss for every operator — *including* `!=` — matching
/// [`RelOp::apply`] exactly. (IEEE comparisons already return `false`
/// for NaN operands on `< <= > >= ==`; only `!=` needs the explicit
/// NaN rejection.)
fn cmp_mask(op: RelOp, a: &[f64], b: &[f64]) -> u128 {
    let mut m = 0u128;
    macro_rules! lanes {
        (|$x:ident, $y:ident| $e:expr) => {
            for (i, (&$x, &$y)) in a.iter().zip(b).enumerate() {
                m |= ($e as u128) << i;
            }
        };
    }
    match op {
        RelOp::Lt => lanes!(|x, y| x < y),
        RelOp::Le => lanes!(|x, y| x <= y),
        RelOp::Gt => lanes!(|x, y| x > y),
        RelOp::Ge => lanes!(|x, y| x >= y),
        RelOp::Eq => lanes!(|x, y| x == y),
        RelOp::Ne => lanes!(|x, y| !x.is_nan() && !y.is_nan() && x != y),
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_system;
    use crate::{Atom, Expr, PathCondition, VarId};

    fn pc_of(src: &str) -> PathCondition {
        parse_system(src).unwrap().constraint_set.pcs()[0].clone()
    }

    /// Column layout of a row-major point list.
    fn columns(points: &[Vec<f64>], nvars: usize) -> Vec<Vec<f64>> {
        (0..nvars)
            .map(|d| points.iter().map(|p| p[d]).collect())
            .collect()
    }

    fn check_equivalence(pc: &PathCondition, points: &[Vec<f64>], nvars: usize) {
        let tape = EvalTape::compile(pc);
        let bulk = BulkTape::compile(&tape);
        let cols = columns(points, nvars);
        let scalar: Vec<bool> = points.iter().map(|p| tape.holds(p)).collect();
        // Hit-for-hit over every slab, including the ragged tail.
        let mut scratch = BulkScratch::new();
        let mut off = 0;
        while off < points.len() {
            let w = LANES.min(points.len() - off);
            let mask = bulk.hit_mask(&cols, off, w, &mut scratch);
            for i in 0..w {
                assert_eq!(
                    (mask >> i) & 1 == 1,
                    scalar[off + i],
                    "lane {} of slab at {off} diverges on {:?}",
                    i,
                    points[off + i]
                );
            }
            off += w;
        }
        let hits = scalar.iter().filter(|&&h| h).count() as u64;
        assert_eq!(bulk.count_hits(&cols, points.len()), hits);
    }

    #[test]
    fn matches_scalar_on_grid() {
        let pc = pc_of(
            "var x in [-2, 2]; var y in [-2, 2];
             pc sin(x * y) > 0.25 && x + y <= 1.5 && x * x + y * y <= 4;",
        );
        let points: Vec<Vec<f64>> = (0..40)
            .flat_map(|i| (0..40).map(move |j| vec![-2.0 + i as f64 * 0.1, -2.0 + j as f64 * 0.1]))
            .collect();
        check_equivalence(&pc, &points, 2);
    }

    #[test]
    fn nan_lanes_are_misses_for_every_relop() {
        // sqrt(x) is NaN for negative x; exercise every operator.
        for op in [
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
            RelOp::Eq,
            RelOp::Ne,
        ] {
            let pc = PathCondition::from_atoms(vec![Atom::new(
                Expr::var(VarId(0)).sqrt(),
                op,
                Expr::constant(0.5),
            )]);
            let points: Vec<Vec<f64>> = (-20..20).map(|i| vec![i as f64 / 7.0]).collect();
            check_equivalence(&pc, &points, 1);
        }
    }

    #[test]
    fn register_file_is_smaller_than_node_pool_on_chains() {
        // A long chain uses each value once: liveness collapses the
        // scratch to a couple of registers no matter the chain length.
        let mut e = Expr::var(VarId(0));
        for i in 0..100 {
            e = e.add(Expr::constant(i as f64)).sin();
        }
        let pc = PathCondition::from_atoms(vec![Atom::new(e, RelOp::Gt, Expr::constant(0.0))]);
        let tape = EvalTape::compile(&pc);
        let bulk = BulkTape::compile(&tape);
        assert!(tape.len() > 100, "node pool is large: {}", tape.len());
        assert!(
            bulk.num_registers() <= 4,
            "chain should need a tiny register file, got {}",
            bulk.num_registers()
        );
        let points: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 150.0 - 1.0]).collect();
        check_equivalence(&pc, &points, 1);
    }

    #[test]
    fn early_exit_mask_preserves_results() {
        // First atom false everywhere ⇒ later (NaN-producing) atoms are
        // skipped by the mask early-exit, exactly like the scalar path.
        let pc = pc_of("var x in [-4, -1]; pc x >= 0 && sqrt(x) < 1;");
        let points: Vec<Vec<f64>> = (0..200).map(|i| vec![-4.0 + i as f64 * 0.015]).collect();
        check_equivalence(&pc, &points, 1);
    }

    #[test]
    fn empty_conjunction_counts_everything() {
        let bulk = BulkTape::compile(&EvalTape::compile(&PathCondition::new()));
        assert!(bulk.is_empty());
        assert_eq!(bulk.num_vars(), 0);
        assert_eq!(bulk.count_hits(&[], 513), 513);
        assert_eq!(bulk.count_hits(&[], 0), 0);
    }

    #[test]
    fn ragged_tail_widths_are_exact() {
        let pc = pc_of("var x in [0, 1]; pc x < 0.5;");
        for n in [1usize, 127, 128, 129, 255, 256, 300] {
            let points: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
            check_equivalence(&pc, &points, 1);
        }
    }

    #[test]
    fn shared_subterms_evaluate_once_per_slab() {
        let shared = Expr::var(VarId(0)).add(Expr::constant(1.0));
        let pc = PathCondition::from_atoms(vec![
            Atom::new(
                shared.clone().mul(shared.clone()),
                RelOp::Le,
                Expr::constant(4.0),
            ),
            Atom::new(shared, RelOp::Ge, Expr::constant(0.0)),
        ]);
        let tape = EvalTape::compile(&pc);
        let bulk = BulkTape::compile(&tape);
        // Six distinct nodes → six evals + two compares.
        assert_eq!(bulk.num_instructions(), 8);
        let points: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 * 0.1 - 3.0]).collect();
        check_equivalence(&pc, &points, 1);
    }
}
