//! Compiled scalar evaluation tapes for path conditions.
//!
//! [`PathCondition::holds`](crate::PathCondition::holds) walks the
//! expression trees recursively on every call. That is fine for small
//! conditions, but symbolic execution builds expressions by substitution,
//! which shares sub-terms through `Arc`s — the *tree* can be exponentially
//! larger than the underlying DAG (the VolComp INVPEND subject reaches
//! ~10⁵ tree nodes for one atom). Since the Monte Carlo hot path calls the
//! predicate once per sample, that walk dominates everything.
//!
//! [`EvalTape`] compiles a whole conjunction once into a flat,
//! deduplicated node vector:
//!
//! * compilation memoizes by **pointer** (each shared `Arc` sub-term is
//!   visited once — linear in DAG size, not tree size) and by **structure**
//!   (hash-consing on `(op, child ids)` — structurally equal but
//!   separately allocated sub-terms also collapse);
//! * evaluation fills a flat `f64` scratch in topological order, so every
//!   distinct sub-expression is computed exactly once per sample;
//! * atoms are tested in order as soon as their operands are available,
//!   preserving the early-exit behaviour of the naive conjunction loop.
//!
//! [`EvalTape::holds`] keeps its scratch in thread-local storage, making
//! the per-sample path allocation-free after warm-up on every thread.
//!
//! The same DAG walk also yields [`expr_fingerprint`] /
//! [`PathCondition::fingerprint`]: deterministic 128-bit structural
//! hashes computed in time linear in DAG size. Caches key on these
//! instead of on `Expr` itself (whose `Hash`/`Display` walk the full
//! tree — potentially exponential work) or on rendered strings.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::{BinOp, Expr, PathCondition, RelOp, UnOp};

/// 128-bit mixing of a tag word and operand words (SplitMix64 applied to
/// each 64-bit lane with lane-distinct constants).
fn mix128(state: u128, word: u64) -> u128 {
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let lo = state as u64;
    let hi = (state >> 64) as u64;
    let nlo = mix64(lo ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let nhi = mix64(hi ^ word.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).rotate_left(17));
    ((nhi as u128) << 64) | nlo as u128
}

fn fingerprint_node(expr: &Arc<Expr>, memo: &mut HashMap<*const Expr, u128>) -> u128 {
    let ptr = Arc::as_ptr(expr);
    if let Some(&f) = memo.get(&ptr) {
        return f;
    }
    let f = match &**expr {
        Expr::Const(v) => mix128(mix128(1, 0x01), v.to_bits()),
        Expr::Var(id) => mix128(mix128(1, 0x02), id.0 as u64),
        Expr::Unary(op, e) => {
            let c = fingerprint_node(e, memo);
            let s = mix128(mix128(1, 0x03), *op as u64);
            mix128(mix128(s, c as u64), (c >> 64) as u64)
        }
        Expr::Binary(op, a, b) => {
            let ca = fingerprint_node(a, memo);
            let cb = fingerprint_node(b, memo);
            let mut s = mix128(mix128(1, 0x04), *op as u64);
            s = mix128(mix128(s, ca as u64), (ca >> 64) as u64);
            mix128(mix128(s, cb as u64), (cb >> 64) as u64)
        }
    };
    memo.insert(ptr, f);
    f
}

/// Deterministic 128-bit structural fingerprint of an expression,
/// computed in time linear in the DAG size (shared `Arc` sub-terms are
/// visited once). Equal structures fingerprint equally across runs and
/// processes; distinct structures collide with probability ~2⁻¹²⁸.
pub fn expr_fingerprint(expr: &Arc<Expr>) -> u128 {
    fingerprint_node(expr, &mut HashMap::new())
}

impl PathCondition {
    /// Deterministic 128-bit structural fingerprint of the whole
    /// conjunction (atom order matters). See [`expr_fingerprint`].
    pub fn fingerprint(&self) -> u128 {
        let mut memo = HashMap::new();
        let mut s: u128 = mix128(2, 0x05);
        for atom in self.atoms() {
            let l = fingerprint_node(atom.lhs(), &mut memo);
            let r = fingerprint_node(atom.rhs(), &mut memo);
            s = mix128(mix128(s, l as u64), (l >> 64) as u64);
            s = mix128(s, atom.op() as u64);
            s = mix128(mix128(s, r as u64), (r >> 64) as u64);
        }
        s
    }
}

/// One node of a compiled expression, children strictly before parents.
///
/// This is the unified IR's instruction form: [`crate::bulk`] recompiles
/// the node pool into a register-allocated columnar tape, and
/// [`crate::ival`] reinterprets the same pool over intervals with HC4
/// backward contraction. Exposed so differential suites can walk the
/// pool and cross-check every evaluation kind node by node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Node {
    /// A literal constant.
    Const(f64),
    /// An input variable (index into the sample point).
    Var(u32),
    /// Unary operation on an earlier node.
    Unary(UnOp, u32),
    /// Binary operation on two earlier nodes.
    Binary(BinOp, u32, u32),
}

/// Structural identity of a node given its children's ids — the
/// hash-consing key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NodeKey {
    Const(u64),
    Var(u32),
    Unary(UnOp, u32),
    Binary(BinOp, u32, u32),
}

/// A compiled conjunction of relational atoms over one shared node pool.
#[derive(Clone, Debug)]
pub struct EvalTape {
    nodes: Vec<Node>,
    /// `(lhs node, op, rhs node)` per atom, in conjunction order. All
    /// nodes an atom needs have ids `<= max(lhs, rhs)`.
    atoms: Vec<(u32, RelOp, u32)>,
}

struct Builder {
    nodes: Vec<Node>,
    by_ptr: HashMap<*const Expr, u32>,
    by_key: HashMap<NodeKey, u32>,
}

impl Builder {
    fn intern(&mut self, key: NodeKey, node: Node) -> u32 {
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.by_key.insert(key, id);
        id
    }

    fn emit(&mut self, expr: &Arc<Expr>) -> u32 {
        let ptr = Arc::as_ptr(expr);
        if let Some(&id) = self.by_ptr.get(&ptr) {
            return id;
        }
        let id = self.emit_node(expr);
        self.by_ptr.insert(ptr, id);
        id
    }

    fn emit_node(&mut self, expr: &Expr) -> u32 {
        match expr {
            Expr::Const(v) => self.intern(NodeKey::Const(v.to_bits()), Node::Const(*v)),
            Expr::Var(id) => self.intern(NodeKey::Var(id.0), Node::Var(id.0)),
            Expr::Unary(op, e) => {
                let c = self.emit(e);
                if let Some(id) = self.fold(|v| op.apply(v[0]), &[c]) {
                    return id;
                }
                self.intern(NodeKey::Unary(*op, c), Node::Unary(*op, c))
            }
            Expr::Binary(op, a, b) => {
                let ca = self.emit(a);
                let cb = self.emit(b);
                if let Some(id) = self.fold(|v| op.apply(v[0], v[1]), &[ca, cb]) {
                    return id;
                }
                self.intern(NodeKey::Binary(*op, ca, cb), Node::Binary(*op, ca, cb))
            }
        }
    }

    /// Constant-folding peephole: when every child of an operation is a
    /// [`Node::Const`], evaluate it now — with the *same* `apply` routine
    /// every evaluation kind dispatches to at runtime, so the folded
    /// value is bit-for-bit the one the interpreter would recompute per
    /// sample — and intern the result as a constant. Non-finite results
    /// are left unfolded: the interval evaluator encloses `sqrt(-1)` or
    /// `1/0` through the operation's interval form, and a NaN/±∞ point
    /// "interval" has no such form, so those nodes keep their operator.
    fn fold(&mut self, apply: impl FnOnce(&[f64]) -> f64, children: &[u32]) -> Option<u32> {
        let mut vals = [0.0f64; 2];
        for (v, &c) in vals.iter_mut().zip(children) {
            match self.nodes[c as usize] {
                Node::Const(k) => *v = k,
                _ => return None,
            }
        }
        let folded = apply(&vals[..children.len()]);
        if !folded.is_finite() {
            return None;
        }
        Some(self.intern(NodeKey::Const(folded.to_bits()), Node::Const(folded)))
    }
}

impl EvalTape {
    /// Compiles the conjunction. Linear in the condition's DAG size.
    pub fn compile(pc: &PathCondition) -> EvalTape {
        let mut b = Builder {
            nodes: Vec::new(),
            by_ptr: HashMap::new(),
            by_key: HashMap::new(),
        };
        let mut atoms = Vec::with_capacity(pc.len());
        for atom in pc.atoms() {
            let l = b.emit(atom.lhs());
            let r = b.emit(atom.rhs());
            atoms.push((l, atom.op(), r));
        }

        // Dead-node pruning: constant folding replaces `Const op Const`
        // parents with fresh constants, which can orphan the operand
        // constants it consumed. A reverse liveness sweep (children have
        // strictly smaller ids, so one pass suffices) drops every node no
        // atom reaches, and compaction keeps ids dense and topologically
        // ordered — all four evaluation kinds shrink together.
        let mut live = vec![false; b.nodes.len()];
        for &(l, _, r) in &atoms {
            live[l as usize] = true;
            live[r as usize] = true;
        }
        for id in (0..b.nodes.len()).rev() {
            if live[id] {
                match b.nodes[id] {
                    Node::Unary(_, c) => live[c as usize] = true,
                    Node::Binary(_, ca, cb) => {
                        live[ca as usize] = true;
                        live[cb as usize] = true;
                    }
                    Node::Const(_) | Node::Var(_) => {}
                }
            }
        }
        let mut remap = vec![u32::MAX; b.nodes.len()];
        let mut nodes = Vec::new();
        for (id, node) in b.nodes.into_iter().enumerate() {
            if live[id] {
                remap[id] = nodes.len() as u32;
                nodes.push(match node {
                    Node::Unary(op, c) => Node::Unary(op, remap[c as usize]),
                    Node::Binary(op, ca, cb) => {
                        Node::Binary(op, remap[ca as usize], remap[cb as usize])
                    }
                    n => n,
                });
            }
        }
        for (l, _, r) in &mut atoms {
            *l = remap[*l as usize];
            *r = remap[*r as usize];
        }

        EvalTape { nodes, atoms }
    }

    /// Number of distinct nodes (the DAG size — compare
    /// [`Expr::size`](crate::Expr::size), the tree size).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for the empty (always-true) conjunction.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The deduplicated node pool, children strictly before parents —
    /// the unified IR consumed by [`crate::bulk::BulkTape::compile`] and
    /// [`crate::ival::IntervalTape::compile`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The `(lhs node, op, rhs node)` triple per atom, in conjunction
    /// order (consumed by the derived evaluation kinds alongside
    /// [`EvalTape::nodes`]).
    pub fn atom_nodes(&self) -> &[(u32, RelOp, u32)] {
        &self.atoms
    }

    /// Evaluates the conjunction with caller-provided scratch. Nodes are
    /// evaluated lazily up to each atom's operands, so a failing early
    /// atom skips the remainder (NaN on either side of an atom yields
    /// `false`, matching `PathCondition::holds`).
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `env`.
    pub fn holds_with(&self, env: &[f64], vals: &mut Vec<f64>) -> bool {
        vals.clear();
        for &(l, op, r) in &self.atoms {
            let need = (l.max(r) as usize) + 1;
            while vals.len() < need {
                let v = match self.nodes[vals.len()] {
                    Node::Const(c) => c,
                    Node::Var(i) => env[i as usize],
                    Node::Unary(op, c) => op.apply(vals[c as usize]),
                    Node::Binary(op, a, b) => op.apply(vals[a as usize], vals[b as usize]),
                };
                vals.push(v);
            }
            if !op.apply(vals[l as usize], vals[r as usize]) {
                return false;
            }
        }
        true
    }

    /// Evaluates the conjunction using a thread-local scratch buffer —
    /// allocation-free after the first call on each thread.
    pub fn holds(&self, env: &[f64]) -> bool {
        thread_local! {
            static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|s| self.holds_with(env, &mut s.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_system;
    use crate::{Atom, Expr, VarId};

    fn pc_of(src: &str) -> PathCondition {
        parse_system(src).unwrap().constraint_set.pcs()[0].clone()
    }

    #[test]
    fn matches_tree_walk_on_grid() {
        let pc = pc_of(
            "var x in [-2, 2]; var y in [-2, 2];
             pc sin(x * y) > 0.25 && x + y <= 1.5 && x * x + y * y <= 4;",
        );
        let tape = EvalTape::compile(&pc);
        for i in 0..40 {
            for j in 0..40 {
                let p = [-2.0 + i as f64 * 0.1, -2.0 + j as f64 * 0.1];
                assert_eq!(tape.holds(&p), pc.holds(&p), "at {p:?}");
            }
        }
    }

    #[test]
    fn dedups_shared_subterms() {
        // (x + 1) appears in both atoms; the pool stores it once.
        let shared = Expr::var(VarId(0)).add(Expr::constant(1.0));
        let pc = PathCondition::from_atoms(vec![
            Atom::new(
                shared.clone().mul(shared.clone()),
                crate::RelOp::Le,
                Expr::constant(4.0),
            ),
            Atom::new(shared, crate::RelOp::Ge, Expr::constant(0.0)),
        ]);
        let tape = EvalTape::compile(&pc);
        // Nodes: x, 1, x+1, (x+1)*(x+1), 4, 0 — six, not nine.
        assert_eq!(tape.len(), 6);
        assert!(tape.holds(&[0.5]));
        assert!(!tape.holds(&[2.0]));
    }

    #[test]
    fn dag_compile_is_linear_not_exponential() {
        // e_{k+1} = e_k + e_k doubles the *tree* each step; the DAG grows
        // by one node. 40 doublings would be 2^40 tree nodes.
        let mut e = Expr::var(VarId(0));
        for _ in 0..40 {
            e = e.clone().add(e);
        }
        let pc =
            PathCondition::from_atoms(vec![Atom::new(e, crate::RelOp::Gt, Expr::constant(0.0))]);
        let tape = EvalTape::compile(&pc);
        assert!(tape.len() <= 43, "DAG size {}", tape.len());
        // 2^40 * 1e-9 ≈ 1100 > 0.
        assert!(tape.holds(&[1e-9]));
        assert!(!tape.holds(&[-1e-9]));
    }

    #[test]
    fn const_subtrees_fold_and_prune() {
        // 2 * 3 + 1 folds to the single constant 7; its operand
        // constants are pruned. Pool: x, 7.
        let pc = pc_of("var x in [0, 10]; pc x < 2.0 * 3.0 + 1.0;");
        let tape = EvalTape::compile(&pc);
        assert_eq!(tape.len(), 2, "pool {:?}", tape.nodes());
        assert!(tape.nodes().contains(&Node::Const(7.0)));
        assert!(tape.holds(&[6.5]));
        assert!(!tape.holds(&[7.0]));
        assert_eq!(tape.holds(&[6.5]), pc.holds(&[6.5]));
    }

    #[test]
    fn folding_uses_runtime_apply_bit_exactly() {
        // sin(2.5) has no short decimal form: the folded constant must
        // be the exact runtime value, not an approximation.
        let pc = PathCondition::from_atoms(vec![Atom::new(
            Expr::constant(2.5).sin(),
            crate::RelOp::Lt,
            Expr::var(VarId(0)),
        )]);
        let tape = EvalTape::compile(&pc);
        assert_eq!(tape.len(), 2);
        assert!(tape.nodes().contains(&Node::Const(2.5f64.sin())));
        let probe = 2.5f64.sin(); // boundary: < is strict
        assert!(!tape.holds(&[probe]));
        assert!(tape.holds(&[probe + 1e-15]));
        assert_eq!(tape.holds(&[probe]), pc.holds(&[probe]));
    }

    #[test]
    fn non_finite_folds_are_left_to_the_operators() {
        // sqrt(-1) is NaN and 1/0 is ∞: neither may become a point
        // constant (the interval evaluator has no enclosure for one),
        // so the operator nodes survive.
        let nan_pc = PathCondition::from_atoms(vec![Atom::new(
            Expr::constant(-1.0).sqrt(),
            crate::RelOp::Ne,
            Expr::var(VarId(0)),
        )]);
        let tape = EvalTape::compile(&nan_pc);
        assert!(tape
            .nodes()
            .iter()
            .any(|n| matches!(n, Node::Unary(UnOp::Sqrt, _))));
        // NaN != x is false for every x — matching the tree walk.
        assert!(!tape.holds(&[1.0]));
        assert_eq!(tape.holds(&[1.0]), nan_pc.holds(&[1.0]));

        let inf_pc = pc_of("var x in [0, 10]; pc x < 1.0 / 0.0;");
        let tape = EvalTape::compile(&inf_pc);
        assert!(tape
            .nodes()
            .iter()
            .any(|n| matches!(n, Node::Binary(BinOp::Div, _, _))));
        assert!(tape.holds(&[5.0]));
    }

    #[test]
    fn folded_constant_dedups_with_written_constant() {
        // 1 + 1 folds to 2, which hash-conses with the literal 2: the
        // two atoms share one constant node.
        let pc = pc_of("var x in [0, 10]; pc x < 1.0 + 1.0 && x > 2.0 - 4.0;");
        let tape = EvalTape::compile(&pc);
        // Pool: x, 2, -2 — the folded 2 and any written 2 are one node.
        assert_eq!(tape.len(), 3, "pool {:?}", tape.nodes());
        assert!(tape.holds(&[1.0]));
    }

    #[test]
    fn every_pruned_tape_node_is_reachable_from_an_atom() {
        let pc = pc_of(
            "var x in [-2, 2]; var y in [-2, 2];
             pc sin(x * (2.0 * 0.5)) > 0.25 - 0.25 && x + y <= 3.0 / 2.0;",
        );
        let tape = EvalTape::compile(&pc);
        let mut live = vec![false; tape.len()];
        for &(l, _, r) in tape.atom_nodes() {
            live[l as usize] = true;
            live[r as usize] = true;
        }
        for id in (0..tape.len()).rev() {
            if live[id] {
                match tape.nodes()[id] {
                    Node::Unary(_, c) => live[c as usize] = true,
                    Node::Binary(_, a, b) => {
                        live[a as usize] = true;
                        live[b as usize] = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(live.iter().all(|&l| l), "dead node in {:?}", tape.nodes());
        // And the peephole preserved semantics.
        for i in 0..20 {
            let p = [-2.0 + i as f64 * 0.2, 2.0 - i as f64 * 0.2];
            assert_eq!(tape.holds(&p), pc.holds(&p), "at {p:?}");
        }
    }

    #[test]
    fn fingerprints_are_peephole_independent() {
        // Fingerprints hash the *expression*, not the optimized tape:
        // a foldable form and its folded value stay distinct keys, and
        // compiling neither perturbs them — so every cache keyed by
        // fingerprint (tapes, pavings, predicates, factor store) is
        // oblivious to what the peephole does.
        let foldable = pc_of("var x in [0, 10]; pc x < 2.0 * 3.0 + 1.0;");
        let folded = pc_of("var x in [0, 10]; pc x < 7.0;");
        let before = (foldable.fingerprint(), folded.fingerprint());
        assert_ne!(before.0, before.1);
        let _ = (EvalTape::compile(&foldable), EvalTape::compile(&folded));
        assert_eq!(
            (foldable.fingerprint(), folded.fingerprint()),
            before,
            "compilation must not perturb fingerprints"
        );
    }

    #[test]
    fn early_exit_and_nan_semantics() {
        let pc = pc_of("var x in [-4, 4]; pc x >= 0 && sqrt(x) < 1;");
        let tape = EvalTape::compile(&pc);
        assert!(tape.holds(&[0.25]));
        assert!(!tape.holds(&[2.0]));
        // Negative x: first atom fails; also sqrt would be NaN — false
        // either way, matching the tree walk.
        assert!(!tape.holds(&[-1.0]));
        assert_eq!(tape.holds(&[-1.0]), pc.holds(&[-1.0]));
    }

    #[test]
    fn empty_condition_is_true() {
        let tape = EvalTape::compile(&PathCondition::new());
        assert!(tape.is_empty());
        assert!(tape.holds(&[]));
    }

    #[test]
    fn fingerprints_are_structural_and_discriminating() {
        let a = pc_of("var x in [0, 1]; pc sin(x) > 0.5 && x < 0.9;");
        let b = pc_of("var x in [0, 1]; pc sin(x) > 0.5 && x < 0.9;");
        // Separate allocations, same structure: identical fingerprints.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = pc_of("var x in [0, 1]; pc sin(x) > 0.5 && x < 0.8;");
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Atom order matters (conjunction identity for caching purposes).
        let d = pc_of("var x in [0, 1]; pc x < 0.9 && sin(x) > 0.5;");
        assert_ne!(a.fingerprint(), d.fingerprint());
        // Operator and operand swaps discriminate.
        let e1 = Arc::new(Expr::var(VarId(0)).add(Expr::var(VarId(1))));
        let e2 = Arc::new(Expr::var(VarId(1)).add(Expr::var(VarId(0))));
        assert_ne!(expr_fingerprint(&e1), expr_fingerprint(&e2));
    }

    #[test]
    fn fingerprint_is_linear_in_dag_size() {
        // 2^60 tree nodes; finishes instantly only if the walk is
        // DAG-memoized.
        let mut e = Expr::var(VarId(0));
        for _ in 0..60 {
            e = e.clone().add(e);
        }
        let shared = Arc::new(e);
        let f1 = expr_fingerprint(&shared);
        let f2 = expr_fingerprint(&shared);
        assert_eq!(f1, f2);
    }
}
