//! Three-way differential equivalence of the tape IR's evaluation kinds
//! on *random expression DAGs*:
//!
//! * the columnar bulk evaluator must agree with [`EvalTape::holds`]
//!   **hit for hit**, on batch sizes that do not divide the lane width
//!   evenly — including NaN-producing operations (`sqrt` of negatives,
//!   `ln` of non-positives, `asin` outside its domain, negative bases
//!   under `pow`, `0/0`) and every relational operator;
//! * the interval kind ([`IntervalTape`]) must **enclose** the scalar
//!   results: for random boxes, every node's forward interval contains
//!   the scalar value of that node at every sampled point of the box,
//!   and HC4 contraction never loses a satisfying point.
//!
//! DAGs are grown from a seeded RNG over a pool of shared sub-terms, so
//! generated conditions exercise hash-consing, register reuse and the
//! per-atom early-exit masks, not just expression trees.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qcoral_constraints::bulk::LANES;
use qcoral_constraints::{
    Atom, BinOp, BulkScratch, BulkTape, EvalTape, Expr, IntervalTape, IvalScratch, Node,
    PathCondition, RelOp, UnOp, VarId,
};
use qcoral_interval::{Interval, IntervalBox};

const NVARS: usize = 3;

const UNOPS: [UnOp; 11] = [
    UnOp::Neg,
    UnOp::Abs,
    UnOp::Sqrt, // NaN on negative operands
    UnOp::Exp,
    UnOp::Ln, // NaN on negative, -inf at 0
    UnOp::Sin,
    UnOp::Cos,
    UnOp::Tan,
    UnOp::Asin, // NaN outside [-1, 1]
    UnOp::Acos,
    UnOp::Atan,
];

const BINOPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div, // 0/0 = NaN, x/0 = ±inf
    BinOp::Pow, // NaN on negative base with fractional exponent
    BinOp::Min,
    BinOp::Max,
    BinOp::Atan2,
];

const RELOPS: [RelOp; 6] = [
    RelOp::Lt,
    RelOp::Le,
    RelOp::Gt,
    RelOp::Ge,
    RelOp::Eq,
    RelOp::Ne,
];

/// Grows a random DAG of `size` operation nodes over a pool seeded with
/// variables and constants (including the NaN workhorses 0 and -1), then
/// assembles `natoms` atoms whose operands are drawn from the pool —
/// shared sub-terms appear in several atoms, like symexec output.
fn random_pc(seed: u64, size: usize, natoms: usize) -> PathCondition {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<Arc<Expr>> = (0..NVARS)
        .map(|i| Arc::new(Expr::var(VarId(i as u32))))
        .collect();
    for c in [0.0, -1.0, 0.5, 2.0] {
        pool.push(Arc::new(Expr::constant(c)));
    }
    for _ in 0..size {
        let e = if rng.gen_bool(0.4) {
            let op = UNOPS[rng.gen_range(0..UNOPS.len())];
            let c = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            Expr::Unary(op, c)
        } else {
            let op = BINOPS[rng.gen_range(0..BINOPS.len())];
            let a = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            let b = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            Expr::Binary(op, a, b)
        };
        pool.push(Arc::new(e));
    }
    let atoms = (0..natoms)
        .map(|_| {
            let l = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            let r = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            Atom::new(l, RELOPS[rng.gen_range(0..RELOPS.len())], r)
        })
        .collect();
    PathCondition::from_atoms(atoms)
}

/// Random points over a range wide enough to trip every NaN source.
fn random_points(seed: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..NVARS).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect()
}

fn columns(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    (0..NVARS)
        .map(|d| points.iter().map(|p| p[d]).collect())
        .collect()
}

/// A random non-degenerate box inside `[-3, 3]^NVARS`.
fn random_box(seed: u64) -> IntervalBox {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..NVARS)
        .map(|_| {
            let a: f64 = rng.gen_range(-3.0..3.0);
            let b: f64 = rng.gen_range(-3.0..3.0);
            Interval::new(a.min(b), a.max(b).max(a.min(b) + 1e-9))
        })
        .collect()
}

/// Random points strictly inside a box.
fn points_in_box(seed: u64, bx: &IntervalBox, n: usize) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..bx.ndim())
                .map(|d| rng.gen_range(bx[d].lo()..bx[d].hi()))
                .collect()
        })
        .collect()
}

/// Per-node scalar values at a point, mirroring the float evaluators'
/// semantics op for op (the shared pool is in topological order). The
/// second vector flags *real-defined* nodes: the node's value is finite
/// and so is every intermediate below it. A float chain can revive a
/// finite value from an undefined one (`exp(ln(0)) = 0`,
/// `atan(1/0) = π/2`), but interval semantics model real arithmetic,
/// where the whole chain is undefined — enclosure is only claimed for
/// defined nodes.
fn scalar_node_values(nodes: &[Node], p: &[f64]) -> (Vec<f64>, Vec<bool>) {
    let mut vals: Vec<f64> = Vec::with_capacity(nodes.len());
    let mut defined: Vec<bool> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let (v, d) = match node {
            Node::Const(c) => (*c, true),
            Node::Var(i) => (p[*i as usize], true),
            Node::Unary(op, c) => (op.apply(vals[*c as usize]), defined[*c as usize]),
            Node::Binary(op, a, b) => (
                op.apply(vals[*a as usize], vals[*b as usize]),
                defined[*a as usize] && defined[*b as usize],
            ),
        };
        defined.push(d && v.is_finite());
        vals.push(v);
    }
    (vals, defined)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Hit-for-hit equivalence on random DAGs and ragged batch sizes.
    #[test]
    fn bulk_lanes_match_scalar_holds(
        seed in 0u64..1_000_000,
        size in 0usize..48,
        natoms in 1usize..6,
        n in 1usize..400,
    ) {
        let pc = random_pc(seed, size, natoms);
        let tape = EvalTape::compile(&pc);
        let bulk = BulkTape::compile(&tape);
        let points = random_points(seed ^ 0xDEAD_BEEF, n);
        let cols = columns(&points);
        let scalar: Vec<bool> = points.iter().map(|p| tape.holds(p)).collect();

        // Per-lane masks across every slab, including the ragged tail.
        let mut scratch = BulkScratch::new();
        let mut off = 0;
        while off < n {
            let w = LANES.min(n - off);
            let mask = bulk.hit_mask(&cols, off, w, &mut scratch);
            for i in 0..w {
                prop_assert_eq!(
                    (mask >> i) & 1 == 1,
                    scalar[off + i],
                    "seed {} lane {} (sample {}): point {:?}",
                    seed, i, off + i, &points[off + i]
                );
            }
            off += w;
        }

        // Aggregate count through the public thread-local entry point.
        let hits = scalar.iter().filter(|&&h| h).count() as u64;
        prop_assert_eq!(bulk.count_hits(&cols, n), hits);
    }

    /// Forced-NaN DAGs: every atom compares against a NaN-heavy operand
    /// (sqrt of a negated absolute value, and 0/0) — bulk lanes must
    /// treat NaN as a miss for every relational operator, like the
    /// scalar path.
    #[test]
    fn nan_heavy_conjunctions_agree(seed in 0u64..1_000_000, n in 1usize..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let zero = Arc::new(Expr::constant(0.0));
        // sqrt(-|x| - 0.5): NaN for every real x.
        let nan_a = Arc::new(Expr::Unary(
            UnOp::Sqrt,
            Arc::new(Expr::Binary(
                BinOp::Sub,
                Arc::new(Expr::Unary(
                    UnOp::Neg,
                    Arc::new(Expr::Unary(UnOp::Abs, Arc::new(Expr::var(VarId(0))))),
                )),
                Arc::new(Expr::constant(0.5)),
            )),
        ));
        // 0 / 0 = NaN.
        let nan_b = Arc::new(Expr::Binary(BinOp::Div, Arc::clone(&zero), zero));
        let y = Arc::new(Expr::var(VarId(1)));
        let atoms = RELOPS
            .iter()
            .map(|&op| {
                let nan = if rng.gen_bool(0.5) { &nan_a } else { &nan_b };
                if rng.gen_bool(0.5) {
                    Atom::new(Arc::clone(nan), op, Arc::clone(&y))
                } else {
                    Atom::new(Arc::clone(&y), op, Arc::clone(nan))
                }
            })
            .collect();
        let pc = PathCondition::from_atoms(atoms);
        let tape = EvalTape::compile(&pc);
        let bulk = BulkTape::compile(&tape);
        let points = random_points(seed ^ 0x5EED, n);
        let cols = columns(&points);
        for p in &points {
            prop_assert!(!tape.holds(p), "NaN atom held at {:?}", p);
        }
        prop_assert_eq!(bulk.count_hits(&cols, n), 0);
    }

    /// The third way: on random boxes and random DAGs, the interval
    /// kind's forward evaluation must *enclose* the scalar kind node for
    /// node — every finite scalar value lies inside the corresponding
    /// forward interval. Scalar NaNs (undefined points) and infinities
    /// (float division by an exactly-zero denominator, overflow) are
    /// outside the real-arithmetic semantics intervals model and are
    /// skipped.
    #[test]
    fn interval_forward_encloses_scalar_on_random_dags(
        seed in 0u64..1_000_000,
        size in 0usize..48,
        natoms in 1usize..6,
        n in 1usize..48,
    ) {
        let pc = random_pc(seed, size, natoms);
        let tape = EvalTape::compile(&pc);
        let ival = IntervalTape::compile(&tape);
        let bx = random_box(seed ^ 0xB0B0);
        let mut ivals = Vec::new();
        ival.forward(&bx, &mut ivals);
        let points = points_in_box(seed ^ 0xCAFE, &bx, n);
        for p in &points {
            let (svals, defined) = scalar_node_values(tape.nodes(), p);
            for (i, &v) in svals.iter().enumerate() {
                if !defined[i] {
                    continue;
                }
                prop_assert!(
                    ivals[i].contains(v),
                    "seed {}: node {} ({:?}) = {} escapes {} at {:?} over {}",
                    seed, i, tape.nodes()[i], v, ivals[i], p, bx
                );
            }
        }
    }

    /// HC4 contraction never loses a satisfying point: any sampled point
    /// that satisfies the conjunction (with every intermediate finite,
    /// i.e. real-defined) must survive batch contraction inside its
    /// narrowed box, and the box must not be declared unsat.
    #[test]
    fn interval_contraction_keeps_scalar_hits(
        seed in 0u64..1_000_000,
        size in 0usize..32,
        natoms in 1usize..5,
        n in 1usize..64,
    ) {
        let pc = random_pc(seed, size, natoms);
        let tape = EvalTape::compile(&pc);
        let ival = IntervalTape::compile(&tape);
        let bx = random_box(seed ^ 0xB0B0);
        let points = points_in_box(seed ^ 0xF00D, &bx, n);
        let hits: Vec<&Vec<f64>> = points
            .iter()
            .filter(|p| {
                let (_, defined) = scalar_node_values(tape.nodes(), p);
                tape.holds(p) && defined.iter().all(|&d| d)
            })
            .collect();
        let mut contracted = bx.clone();
        let mut scratch = IvalScratch::new();
        let sat = ival.contract(&mut contracted, 8, &mut scratch);
        for p in hits {
            prop_assert!(sat, "seed {}: box with solution {:?} declared unsat", seed, p);
            prop_assert!(
                contracted.contains_point(p),
                "seed {}: contraction of {} to {} lost solution {:?}",
                seed, bx, contracted, p
            );
        }
    }
}

/// The fourth evaluation kind: native kernels emitted by [`JitTape`]
/// must agree with the bulk interpreter *and* the scalar tape hit for
/// hit on the same random DAGs — including NaN-heavy conjunctions,
/// every relational operator and batch sizes that leave a ragged tail
/// (which the JIT hands back to the interpreter). Compiled only with
/// `--features jit`; each test no-ops on hosts where runtime CPU
/// detection rejects the JIT, mirroring the production fallback.
#[cfg(feature = "jit")]
mod jit_equiv {
    use super::*;
    use qcoral_constraints::jit::{jit_available, JitScratch, JitTape};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        /// Hit-for-hit and mask-for-mask: the aggregate count through
        /// the JIT entry point equals the scalar truth, and on every
        /// full slab the native lane mask is bit-identical to the
        /// interpreter's.
        #[test]
        fn jit_matches_bulk_and_scalar_hit_for_hit(
            seed in 0u64..1_000_000,
            size in 0usize..48,
            natoms in 1usize..6,
            n in 1usize..400,
        ) {
            if !jit_available() {
                return;
            }
            let pc = random_pc(seed, size, natoms);
            let tape = EvalTape::compile(&pc);
            let bulk = BulkTape::compile(&tape);
            let jit = JitTape::compile(&bulk).expect("jit_available, so compile succeeds");
            let points = random_points(seed ^ 0xDEAD_BEEF, n);
            let cols = columns(&points);
            let scalar: Vec<bool> = points.iter().map(|p| tape.holds(p)).collect();
            let hits = scalar.iter().filter(|&&h| h).count() as u64;

            prop_assert_eq!(bulk.count_hits(&cols, n), hits);
            prop_assert_eq!(jit.count_hits(&bulk, &cols, n), hits, "seed {}", seed);

            let mut js = JitScratch::new();
            let mut bs = BulkScratch::new();
            let mut off = 0;
            while off + LANES <= n {
                let native = jit.hit_mask_slab(&cols, off, &mut js);
                let interp = bulk.hit_mask(&cols, off, LANES, &mut bs);
                prop_assert_eq!(native, interp, "seed {} slab at {}", seed, off);
                off += LANES;
            }
        }

        /// Forced-NaN conjunctions through the native kernels: a NaN
        /// operand must miss under every relational operator (`!=`
        /// included), exactly like the scalar and bulk paths.
        #[test]
        fn jit_nan_heavy_conjunctions_agree(seed in 0u64..1_000_000, n in 1usize..300) {
            if !jit_available() {
                return;
            }
            let mut rng = SmallRng::seed_from_u64(seed);
            let zero = Arc::new(Expr::constant(0.0));
            // sqrt(-|x| - 0.5): NaN for every real x (and built from
            // non-constant leaves, so the peephole cannot fold it away).
            let nan_a = Arc::new(Expr::Unary(
                UnOp::Sqrt,
                Arc::new(Expr::Binary(
                    BinOp::Sub,
                    Arc::new(Expr::Unary(
                        UnOp::Neg,
                        Arc::new(Expr::Unary(UnOp::Abs, Arc::new(Expr::var(VarId(0))))),
                    )),
                    Arc::new(Expr::constant(0.5)),
                )),
            ));
            // x * 0 / (x * 0) = 0/0 = NaN for finite x.
            let x0 = Arc::new(Expr::Binary(
                BinOp::Mul,
                Arc::new(Expr::var(VarId(0))),
                Arc::clone(&zero),
            ));
            let nan_b = Arc::new(Expr::Binary(BinOp::Div, Arc::clone(&x0), x0));
            let y = Arc::new(Expr::var(VarId(1)));
            let atoms = RELOPS
                .iter()
                .map(|&op| {
                    let nan = if rng.gen_bool(0.5) { &nan_a } else { &nan_b };
                    if rng.gen_bool(0.5) {
                        Atom::new(Arc::clone(nan), op, Arc::clone(&y))
                    } else {
                        Atom::new(Arc::clone(&y), op, Arc::clone(nan))
                    }
                })
                .collect();
            let pc = PathCondition::from_atoms(atoms);
            let tape = EvalTape::compile(&pc);
            let bulk = BulkTape::compile(&tape);
            let jit = JitTape::compile(&bulk).expect("jit_available, so compile succeeds");
            let points = random_points(seed ^ 0x5EED, n);
            let cols = columns(&points);
            prop_assert_eq!(jit.count_hits(&bulk, &cols, n), 0);
        }
    }
}
