//! Benchmark harness regenerating every table and figure of the qCORAL
//! paper.
//!
//! Each table has a runner function returning structured rows (so the
//! binaries, the Criterion benches and the integration tests share one
//! implementation) and a binary that prints the table:
//!
//! | Paper artifact | Runner | Binary |
//! |---|---|---|
//! | Figure 2 + Table 1 | [`table1::run`] | `table1` |
//! | Table 2 (micro-benchmarks) | [`table2::run`] | `table2` |
//! | Table 3 (NIntegrate / VolComp / qCORAL) | [`table3::run`] | `table3` |
//! | Table 4 (feature ablation) | [`table4::run`] | `table4` |
//!
//! Run a binary with `cargo run --release -p qcoral-bench --bin table2`.
//! All runners fix RNG seeds per repetition, so output is reproducible.

#![warn(missing_docs)]

pub mod adaptive;
pub mod hotpath;
pub mod profiles;
pub mod rare;
pub mod service;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod text;
