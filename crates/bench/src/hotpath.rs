//! Hot-path performance trajectory: serial vs parallel analyzer,
//! tree-walk vs compiled-tape vs columnar-bulk predicate evaluation, and
//! scalar vs bulk Monte Carlo sampling on the Table 3 multi-PC workload,
//! emitted as `BENCH_hotpath.json` so successive changes can be compared
//! run over run.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use qcoral::{Analyzer, CompiledPred, Options};
use qcoral_constraints::{BulkScratch, ConstraintSet, Domain, EvalTape};
use qcoral_interval::{Interval, IntervalBox};
use qcoral_mc::{hit_or_miss_plan, hit_or_miss_plan_bulk, SamplePlan, UsageProfile};
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

/// One subject's hot-path measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Number of path conditions.
    pub paths: usize,
    /// Sample budget per factor.
    pub samples: u64,
    /// Serial analyzer wall time (s), best of `reps`.
    pub serial_secs: f64,
    /// Parallel analyzer wall time (s), best of `reps`.
    pub parallel_secs: f64,
    /// `serial_secs / parallel_secs` — bounded by the thread count.
    pub parallel_speedup: f64,
    /// Whether every cross-checked estimate was bit-identical: serial vs
    /// parallel analyzer, *and* scalar-tape vs columnar-bulk Monte Carlo
    /// per path condition.
    pub estimates_identical: bool,
    /// Whether the scalar-tape and columnar-bulk Monte Carlo estimates
    /// (full draw + evaluate pipeline, per path condition) agreed bit
    /// for bit — the bulk rows' correctness bit, also folded into
    /// `estimates_identical`.
    pub bulk_estimates_identical: bool,
    /// Tree-walk predicate evaluation time for the probe batch (s).
    pub pred_tree_secs: f64,
    /// Compiled-tape predicate evaluation time for the same batch (s).
    pub pred_tape_secs: f64,
    /// `pred_tree_secs / pred_tape_secs` — the DAG-dedup win, independent
    /// of the machine's core count.
    pub pred_tape_speedup: f64,
    /// Scalar-tape predicate evaluation time over the columnar probe
    /// batch (`samples` points × every PC), row by row (s).
    pub scalar_eval_secs: f64,
    /// Columnar bulk-tape evaluation time over the same batch (s).
    pub bulk_eval_secs: f64,
    /// Scalar predicate throughput over the probe batch (samples/sec).
    pub scalar_samples_per_sec: f64,
    /// Bulk predicate throughput over the same batch (samples/sec).
    pub bulk_samples_per_sec: f64,
    /// `scalar_eval_secs / bulk_eval_secs` — the columnar win of the
    /// register-allocated slice tapes, independent of core count.
    pub bulk_eval_speedup: f64,
    /// Scalar-tape Monte Carlo wall time: draw + evaluate `samples`
    /// samples per path condition through `hit_or_miss_plan` (s).
    pub mc_scalar_secs: f64,
    /// The same sampling runs through the columnar bulk path (s).
    pub mc_bulk_secs: f64,
    /// `mc_scalar_secs / mc_bulk_secs` — the end-to-end sampling win,
    /// RNG draws included.
    pub mc_bulk_speedup: f64,
}

/// Observability tax on the sampling hot path: the same end-to-end
/// analysis with `Options::trace` off (the default; every span site
/// collapses to one branch) and on (spans recorded at factor/paving/
/// round granularity). The `subject` field comes first so the perf
/// gate's line-oriented extractor scopes these metrics under
/// `obs_overhead`.
#[derive(Clone, Debug, Serialize)]
pub struct ObsOverhead {
    /// Always `"obs_overhead"` (perf-gate row key).
    pub subject: String,
    /// Sample budget per factor.
    pub samples: u64,
    /// Analyzer wall time with tracing off (s), best of `reps` — gated
    /// against the committed baseline, so instrumentation creep on the
    /// untraced path fails CI like any other hot-path regression.
    pub trace_off_secs: f64,
    /// The same analysis with `Options::trace` on (s).
    pub trace_on_secs: f64,
    /// `trace_on_secs / trace_off_secs` — the cost of *collecting* a
    /// trace, paid only by requests that opt in.
    pub trace_on_ratio: f64,
    /// Tracing must be a pure observer: traced and untraced estimates
    /// bit-identical.
    pub estimates_identical: bool,
}

/// The whole emitted document.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Threads the parallel runs could use (1 ⇒ fan-out cannot win).
    pub threads: usize,
    /// Sample budget per factor.
    pub samples: u64,
    /// Per-subject rows.
    pub rows: Vec<Row>,
    /// Geometric mean of the parallel speedups.
    pub parallel_speedup_geomean: f64,
    /// Geometric mean of the predicate-tape speedups.
    pub pred_tape_speedup_geomean: f64,
    /// Geometric mean of the columnar-bulk predicate-throughput speedups
    /// (`bulk_eval_speedup` across subjects).
    pub bulk_eval_speedup_geomean: f64,
    /// Geometric mean of the end-to-end sampling speedups
    /// (`mc_bulk_speedup` across subjects).
    pub mc_bulk_speedup_geomean: f64,
    /// Tracing cost on the widest subject, off and on. Declared last so
    /// its `subject` scope cannot leak onto the geomean lines above in
    /// the perf gate's line-oriented extractor.
    pub obs_overhead: ObsOverhead,
}

fn best_of<R>(reps: u32, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

fn measure_subject(
    name: &str,
    domain: &Domain,
    cs: &ConstraintSet,
    samples: u64,
    reps: u32,
) -> Row {
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache()
        .with_samples(samples)
        .with_seed(1);

    // Fresh analyzers per rep so the paving cache never carries over and
    // serial/parallel measure the same work.
    let (serial, est_serial) = best_of(reps, || {
        Analyzer::new(opts.clone())
            .analyze(cs, domain, &profile)
            .estimate
    });
    let (parallel, est_parallel) = best_of(reps, || {
        Analyzer::new(opts.clone().with_parallel(true))
            .analyze(cs, domain, &profile)
            .estimate
    });

    // Predicate probe: evaluate every PC on a fixed grid of points, tree
    // walk vs compiled tape. This is the per-sample inner loop of the
    // quantifier, so its ratio is the machine-independent hot-path win.
    let bounds: Vec<(f64, f64)> = domain.iter().map(|(_, v)| (v.lo, v.hi)).collect();
    let points: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            bounds
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| lo + (hi - lo) * ((i * 37 + d * 13) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let (pred_tree, hits_tree) = best_of(reps, || {
        let mut hits = 0usize;
        for pc in cs.pcs() {
            for p in &points {
                if pc.holds(p) {
                    hits += 1;
                }
            }
        }
        hits
    });
    let tapes: Vec<EvalTape> = cs.pcs().iter().map(EvalTape::compile).collect();
    let (pred_tape, hits_tape) = best_of(reps, || {
        let mut hits = 0usize;
        for t in &tapes {
            for p in &points {
                if t.holds(p) {
                    hits += 1;
                }
            }
        }
        hits
    });
    assert_eq!(hits_tree, hits_tape, "tape must agree with the tree walk");

    // Columnar probe: `samples` domain points drawn once with a fixed
    // seed, stored row-major for the scalar tape and column-major for the
    // bulk tape. Throughput is `paths × samples` predicate evaluations
    // over the measured time — the per-sample inner loop with the RNG
    // taken out, so the ratio isolates the columnar evaluation win.
    let ndim = bounds.len();
    let n = samples as usize;
    let boxed: IntervalBox = bounds
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0xB01D);
    let mut point = vec![0.0; ndim];
    let mut rows_flat: Vec<f64> = Vec::with_capacity(n * ndim);
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); ndim];
    for _ in 0..n {
        assert!(profile.sample_in(&boxed, &boxed, &mut rng, &mut point));
        rows_flat.extend_from_slice(&point);
        for (d, col) in cols.iter_mut().enumerate() {
            col.push(point[d]);
        }
    }
    let preds: Vec<CompiledPred> = cs.pcs().iter().map(CompiledPred::compile).collect();
    let (scalar_eval, hits_scalar) = best_of(reps, || {
        let mut hits = 0u64;
        for p in &preds {
            for row in rows_flat.chunks_exact(ndim) {
                if p.scalar().holds(row) {
                    hits += 1;
                }
            }
        }
        hits
    });
    let (bulk_eval, hits_bulk) = best_of(reps, || {
        let mut scratch = BulkScratch::new();
        let mut hits = 0u64;
        for p in &preds {
            hits += p.bulk().count_hits_with(&cols, n, &mut scratch);
        }
        hits
    });
    assert_eq!(
        hits_scalar, hits_bulk,
        "bulk must agree with the scalar tape"
    );
    let evals = (cs.len() * n) as f64;

    // End-to-end sampling probe: the same `hit_or_miss_plan` runs the
    // analyzer performs per factor, scalar closure vs columnar bulk
    // predicate — RNG draws included, estimates must match bit for bit.
    let plan = SamplePlan::serial(1);
    let (mc_scalar, ests_scalar) = best_of(reps, || {
        preds
            .iter()
            .map(|p| {
                hit_or_miss_plan(
                    &|x: &[f64]| p.scalar().holds(x),
                    &boxed,
                    &profile,
                    samples,
                    plan,
                )
            })
            .collect::<Vec<_>>()
    });
    let (mc_bulk, ests_bulk) = best_of(reps, || {
        preds
            .iter()
            .map(|p| hit_or_miss_plan_bulk(p, &boxed, &profile, samples, plan))
            .collect::<Vec<_>>()
    });
    let bulk_estimates_identical = ests_scalar == ests_bulk;

    Row {
        subject: name.to_owned(),
        paths: cs.len(),
        samples,
        serial_secs: serial.as_secs_f64(),
        parallel_secs: parallel.as_secs_f64(),
        parallel_speedup: serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12),
        estimates_identical: est_serial == est_parallel && bulk_estimates_identical,
        bulk_estimates_identical,
        pred_tree_secs: pred_tree.as_secs_f64(),
        pred_tape_secs: pred_tape.as_secs_f64(),
        pred_tape_speedup: pred_tree.as_secs_f64() / pred_tape.as_secs_f64().max(1e-12),
        scalar_eval_secs: scalar_eval.as_secs_f64(),
        bulk_eval_secs: bulk_eval.as_secs_f64(),
        scalar_samples_per_sec: evals / scalar_eval.as_secs_f64().max(1e-12),
        bulk_samples_per_sec: evals / bulk_eval.as_secs_f64().max(1e-12),
        bulk_eval_speedup: scalar_eval.as_secs_f64() / bulk_eval.as_secs_f64().max(1e-12),
        mc_scalar_secs: mc_scalar.as_secs_f64(),
        mc_bulk_secs: mc_bulk.as_secs_f64(),
        mc_bulk_speedup: mc_scalar.as_secs_f64() / mc_bulk.as_secs_f64().max(1e-12),
    }
}

/// Measures the tracing tax on the widest Table 3 subject (EGFR EPI,
/// 41 path conditions — the most span sites per analysis).
fn measure_obs_overhead(samples: u64, reps: u32) -> ObsOverhead {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "EGFR EPI")
        .expect("subject exists");
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache()
        .with_samples(samples)
        .with_seed(1);
    let (off, est_off) = best_of(reps, || {
        Analyzer::new(opts.clone())
            .analyze(&cs, &domain, &profile)
            .estimate
    });
    let (on, est_on) = best_of(reps, || {
        Analyzer::new(opts.clone().with_trace(true))
            .analyze(&cs, &domain, &profile)
            .estimate
    });
    ObsOverhead {
        subject: "obs_overhead".to_string(),
        samples,
        trace_off_secs: off.as_secs_f64(),
        trace_on_secs: on.as_secs_f64(),
        trace_on_ratio: on.as_secs_f64() / off.as_secs_f64().max(1e-12),
        estimates_identical: est_off == est_on,
    }
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs the hot-path protocol over every multi-PC Table 3 subject.
pub fn run(samples: u64, reps: u32) -> Summary {
    let mut rows = Vec::new();
    for subj in table3_subjects() {
        let (domain, cs) = subj.system_for(0, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        rows.push(measure_subject(subj.name, &domain, &cs, samples, reps));
    }
    Summary {
        // The shim's budget (honors RAYON_NUM_THREADS), not the raw core
        // count — parallel_speedup is bounded by *this* number.
        threads: rayon::current_num_threads(),
        samples,
        parallel_speedup_geomean: geomean(rows.iter().map(|r| r.parallel_speedup)),
        pred_tape_speedup_geomean: geomean(rows.iter().map(|r| r.pred_tape_speedup)),
        bulk_eval_speedup_geomean: geomean(rows.iter().map(|r| r.bulk_eval_speedup)),
        mc_bulk_speedup_geomean: geomean(rows.iter().map(|r| r.mc_bulk_speedup)),
        obs_overhead: measure_obs_overhead(samples, reps),
        rows,
    }
}

/// Serializes a summary to `path` as pretty JSON.
pub fn write_json(summary: &Summary, path: &str) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(summary).expect("serializable summary"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_consistent_rows() {
        let s = run(500, 1);
        assert!(!s.rows.is_empty());
        for r in &s.rows {
            assert!(r.estimates_identical, "{}: parallel diverged", r.subject);
            assert!(
                r.bulk_estimates_identical,
                "{}: bulk sampling diverged from the scalar tape",
                r.subject
            );
            assert!(r.serial_secs > 0.0 && r.pred_tape_secs > 0.0);
            assert!(r.bulk_eval_secs > 0.0 && r.mc_bulk_secs > 0.0);
            assert!(r.bulk_samples_per_sec > 0.0 && r.scalar_samples_per_sec > 0.0);
        }
        assert!(s.pred_tape_speedup_geomean > 0.0);
        assert!(s.bulk_eval_speedup_geomean > 0.0);
        assert!(
            s.obs_overhead.estimates_identical,
            "tracing changed an estimate"
        );
        assert!(s.obs_overhead.trace_off_secs > 0.0 && s.obs_overhead.trace_on_secs > 0.0);
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"pred_tape_speedup\""));
        assert!(json.contains("\"bulk_eval_speedup\""));
        assert!(json.contains("\"bulk_estimates_identical\""));
        assert!(json.contains("\"subject\": \"obs_overhead\""));
        assert!(json.contains("\"trace_off_secs\""));
    }
}
