//! Hot-path performance trajectory: serial vs parallel analyzer,
//! tree-walk vs compiled-tape vs columnar-bulk predicate evaluation,
//! interpreter vs runtime-codegen (`jit_*` rows, measured through the
//! dispatching backend so they stay honest on hosts without the JIT),
//! and scalar vs bulk Monte Carlo sampling on the Table 3 multi-PC
//! workload, emitted as `BENCH_hotpath.json` so successive changes can
//! be compared run over run.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use qcoral::{Analyzer, CompiledPred, Options};
use qcoral_constraints::{BulkScratch, ConstraintSet, Domain, EvalTape, PathCondition};
use qcoral_icp::{ContractScratch, Contractor, Paver, PaverConfig, Paving, Tri};
use qcoral_interval::{Interval, IntervalBox};
use qcoral_mc::{hit_or_miss_plan, hit_or_miss_plan_bulk, BulkPred, SamplePlan, UsageProfile};
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

/// One subject's hot-path measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Number of path conditions.
    pub paths: usize,
    /// Sample budget per factor.
    pub samples: u64,
    /// Serial analyzer wall time (s), best of `reps`.
    pub serial_secs: f64,
    /// Parallel analyzer wall time (s), best of `reps`.
    pub parallel_secs: f64,
    /// `serial_secs / parallel_secs` — bounded by the thread count.
    pub parallel_speedup: f64,
    /// Whether every cross-checked estimate was bit-identical: serial vs
    /// parallel analyzer, *and* scalar-tape vs columnar-bulk Monte Carlo
    /// per path condition.
    pub estimates_identical: bool,
    /// Whether the scalar-tape and columnar-bulk Monte Carlo estimates
    /// (full draw + evaluate pipeline, per path condition) agreed bit
    /// for bit — the bulk rows' correctness bit, also folded into
    /// `estimates_identical`.
    pub bulk_estimates_identical: bool,
    /// Tree-walk predicate evaluation time for the probe batch (s).
    pub pred_tree_secs: f64,
    /// Compiled-tape predicate evaluation time for the same batch (s).
    pub pred_tape_secs: f64,
    /// `pred_tree_secs / pred_tape_secs` — the DAG-dedup win, independent
    /// of the machine's core count.
    pub pred_tape_speedup: f64,
    /// Scalar-tape predicate evaluation time over the columnar probe
    /// batch (`samples` points × every PC), row by row (s).
    pub scalar_eval_secs: f64,
    /// Columnar bulk-tape evaluation time over the same batch (s).
    pub bulk_eval_secs: f64,
    /// Scalar predicate throughput over the probe batch (samples/sec).
    pub scalar_samples_per_sec: f64,
    /// Bulk predicate throughput over the same batch (samples/sec).
    pub bulk_samples_per_sec: f64,
    /// `scalar_eval_secs / bulk_eval_secs` — the columnar win of the
    /// register-allocated slice tapes, independent of core count.
    pub bulk_eval_speedup: f64,
    /// Scalar-tape Monte Carlo wall time: draw + evaluate `samples`
    /// samples per path condition through `hit_or_miss_plan` (s).
    pub mc_scalar_secs: f64,
    /// The same sampling runs through the columnar bulk path (s).
    pub mc_bulk_secs: f64,
    /// `mc_scalar_secs / mc_bulk_secs` — the end-to-end sampling win,
    /// RNG draws included.
    pub mc_bulk_speedup: f64,
    /// Which backend the `jit_*` and `mc_jit_*` measurements ran on:
    /// `"jit"` when a native kernel was emitted for every path
    /// condition, `"bulk"` otherwise (feature off or unsupported CPU —
    /// the rows then time the interpreter fallback, so the perf gate
    /// stays comparable on any host).
    pub jit_backend: String,
    /// Full-predicate evaluation time over the same columnar probe
    /// batch through the dispatching entry point — native kernels under
    /// `--features jit` on a capable CPU, the bulk interpreter
    /// otherwise (s).
    pub jit_eval_secs: f64,
    /// JIT-row predicate throughput over the probe batch (samples/sec).
    pub jit_samples_per_sec: f64,
    /// `bulk_eval_secs / jit_eval_secs` — the runtime-codegen win over
    /// the interpreter it falls back to (≈ 1 on fallback hosts).
    pub jit_eval_speedup: f64,
    /// The end-to-end sampling runs of `mc_bulk_secs` through the
    /// dispatching backend (s).
    pub mc_jit_secs: f64,
    /// `mc_bulk_secs / mc_jit_secs` — the end-to-end sampling win of
    /// runtime codegen, RNG draws included.
    pub mc_jit_speedup: f64,
    /// Whether the JIT-backend Monte Carlo estimates were bit-identical
    /// to the scalar-tape and interpreter estimates, and its probe-batch
    /// hit counts identical to both — the JIT's correctness bit.
    pub jit_estimates_identical: bool,
    /// Reference paving wall time over every path condition (s): the
    /// pre-unified-IR architecture — one single-atom contractor per
    /// atom, each with its own tape, boxes contracted one at a time
    /// with the HC4 fixpoint loop driven from outside.
    pub pave_scalar_secs: f64,
    /// The production paver over the same workload (s): one
    /// whole-conjunction tape, work items contracted and classified in
    /// structure-of-arrays batches.
    pub pave_bulk_secs: f64,
    /// `pave_scalar_secs / pave_bulk_secs` — the bulk-paving win.
    pub pave_bulk_speedup: f64,
    /// Total boxes across the production pavings (inner + boundary).
    pub pave_boxes: usize,
}

/// Observability tax on the sampling hot path: the same end-to-end
/// analysis with `Options::trace` off (the default; every span site
/// collapses to one branch) and on (spans recorded at factor/paving/
/// round granularity). The `subject` field comes first so the perf
/// gate's line-oriented extractor scopes these metrics under
/// `obs_overhead`.
#[derive(Clone, Debug, Serialize)]
pub struct ObsOverhead {
    /// Always `"obs_overhead"` (perf-gate row key).
    pub subject: String,
    /// Sample budget per factor.
    pub samples: u64,
    /// Analyzer wall time with tracing off (s), best of `reps` — gated
    /// against the committed baseline, so instrumentation creep on the
    /// untraced path fails CI like any other hot-path regression.
    pub trace_off_secs: f64,
    /// The same analysis with `Options::trace` on (s).
    pub trace_on_secs: f64,
    /// `trace_on_secs / trace_off_secs` — the cost of *collecting* a
    /// trace, paid only by requests that opt in.
    pub trace_on_ratio: f64,
    /// Tracing must be a pure observer: traced and untraced estimates
    /// bit-identical.
    pub estimates_identical: bool,
}

/// The whole emitted document.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Threads the parallel runs could use (1 ⇒ fan-out cannot win).
    pub threads: usize,
    /// Sample budget per factor.
    pub samples: u64,
    /// Per-subject rows.
    pub rows: Vec<Row>,
    /// Geometric mean of the parallel speedups.
    pub parallel_speedup_geomean: f64,
    /// Geometric mean of the predicate-tape speedups.
    pub pred_tape_speedup_geomean: f64,
    /// Geometric mean of the columnar-bulk predicate-throughput speedups
    /// (`bulk_eval_speedup` across subjects).
    pub bulk_eval_speedup_geomean: f64,
    /// Geometric mean of the end-to-end sampling speedups
    /// (`mc_bulk_speedup` across subjects).
    pub mc_bulk_speedup_geomean: f64,
    /// Geometric mean of the runtime-codegen evaluation speedups
    /// (`jit_eval_speedup` across subjects; ≈ 1 on fallback hosts).
    pub jit_eval_speedup_geomean: f64,
    /// Geometric mean of the end-to-end JIT sampling speedups
    /// (`mc_jit_speedup` across subjects).
    pub mc_jit_speedup_geomean: f64,
    /// Geometric mean of the bulk-paving speedups (`pave_bulk_speedup`
    /// across subjects).
    pub pave_bulk_speedup_geomean: f64,
    /// Tracing cost on the widest subject, off and on. Declared last so
    /// its `subject` scope cannot leak onto the geomean lines above in
    /// the perf gate's line-oriented extractor.
    pub obs_overhead: ObsOverhead,
}

fn best_of<R>(reps: u32, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

/// Reference paver reproducing the pre-unified-IR architecture for the
/// bulk-paving comparison: every atom gets its *own* single-atom
/// contractor (and tape), the HC4 fixpoint loop runs in the driver
/// (`with_max_passes(1)` per atom per sweep), and the branch-and-prune
/// loop pops and contracts one box at a time. The production [`Paver`]
/// runs the same policy through one whole-conjunction tape with batched
/// structure-of-arrays contraction; the time ratio is the paving win.
struct LegacyPaver {
    atoms: Vec<Contractor>,
    config: PaverConfig,
}

/// Max-heap work item ordered by box volume (largest first), matching
/// the production paver's best-first order.
struct LegacyItem {
    boxed: IntervalBox,
    volume: f64,
}

impl PartialEq for LegacyItem {
    fn eq(&self, other: &Self) -> bool {
        self.volume == other.volume
    }
}
impl Eq for LegacyItem {}
impl PartialOrd for LegacyItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LegacyItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.volume
            .partial_cmp(&other.volume)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl LegacyPaver {
    fn new(pc: &PathCondition, nvars: usize, config: PaverConfig) -> LegacyPaver {
        let atoms = pc
            .atoms()
            .iter()
            .map(|a| {
                let single = PathCondition::from_atoms(vec![a.clone()]);
                Contractor::new_uncached(&single, nvars).with_max_passes(1)
            })
            .collect();
        LegacyPaver { atoms, config }
    }

    fn contract(
        &self,
        boxed: &mut IntervalBox,
        scratch: &mut ContractScratch,
        widths: &mut Vec<f64>,
    ) -> bool {
        for _ in 0..self.config.max_passes {
            widths.clear();
            widths.extend(boxed.dims().iter().map(Interval::width));
            for c in &self.atoms {
                if !c.contract_with(boxed, scratch) {
                    return false;
                }
            }
            let changed = widths
                .iter()
                .zip(boxed.dims())
                .any(|(&w, d)| w - d.width() > 1e-12 * w.max(1e-300));
            if !changed {
                break;
            }
        }
        true
    }

    fn certainty(&self, boxed: &IntervalBox, scratch: &mut ContractScratch) -> Tri {
        let mut acc = Tri::True;
        for c in &self.atoms {
            acc = acc.and(c.certainty_with(boxed, scratch));
            if acc == Tri::False {
                return Tri::False;
            }
        }
        acc
    }

    fn pave(&self, domain: &IntervalBox) -> Paving {
        let start = Instant::now();
        let mut scratch = ContractScratch::new();
        let mut widths = Vec::new();
        let mut paving = Paving::default();
        let mut heap = BinaryHeap::new();
        heap.push(LegacyItem {
            volume: domain.volume(),
            boxed: domain.clone(),
        });
        let min_width = self.config.min_width();
        while let Some(LegacyItem { mut boxed, .. }) = heap.pop() {
            if !self.contract(&mut boxed, &mut scratch, &mut widths) {
                continue;
            }
            match self.certainty(&boxed, &mut scratch) {
                Tri::True => {
                    paving.inner.push(boxed);
                    continue;
                }
                Tri::False => continue,
                Tri::Unknown => {}
            }
            let total = paving.len() + heap.len() + 1;
            if total >= self.config.max_boxes
                || boxed.max_width() <= min_width
                || boxed.ndim() == 0
                || start.elapsed() >= self.config.time_budget
            {
                paving.boundary.push(boxed);
            } else {
                let (l, r) = boxed.bisect();
                let lv = l.volume();
                let rv = r.volume();
                heap.push(LegacyItem {
                    boxed: l,
                    volume: lv,
                });
                heap.push(LegacyItem {
                    boxed: r,
                    volume: rv,
                });
            }
        }
        paving
    }
}

fn measure_subject(
    name: &str,
    domain: &Domain,
    cs: &ConstraintSet,
    samples: u64,
    reps: u32,
) -> Row {
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache()
        .with_samples(samples)
        .with_seed(1);

    // Fresh analyzers per rep so the paving cache never carries over and
    // serial/parallel measure the same work.
    let (serial, est_serial) = best_of(reps, || {
        Analyzer::new(opts.clone())
            .analyze(cs, domain, &profile)
            .estimate
    });
    let (parallel, est_parallel) = best_of(reps, || {
        Analyzer::new(opts.clone().with_parallel(true))
            .analyze(cs, domain, &profile)
            .estimate
    });

    // Predicate probe: evaluate every PC on a fixed grid of points, tree
    // walk vs compiled tape. This is the per-sample inner loop of the
    // quantifier, so its ratio is the machine-independent hot-path win.
    let bounds: Vec<(f64, f64)> = domain.iter().map(|(_, v)| (v.lo, v.hi)).collect();
    let points: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            bounds
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| lo + (hi - lo) * ((i * 37 + d * 13) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let (pred_tree, hits_tree) = best_of(reps, || {
        let mut hits = 0usize;
        for pc in cs.pcs() {
            for p in &points {
                if pc.holds(p) {
                    hits += 1;
                }
            }
        }
        hits
    });
    let tapes: Vec<EvalTape> = cs.pcs().iter().map(EvalTape::compile).collect();
    let (pred_tape, hits_tape) = best_of(reps, || {
        let mut hits = 0usize;
        for t in &tapes {
            for p in &points {
                if t.holds(p) {
                    hits += 1;
                }
            }
        }
        hits
    });
    assert_eq!(hits_tree, hits_tape, "tape must agree with the tree walk");

    // Columnar probe: `samples` domain points drawn once with a fixed
    // seed, stored row-major for the scalar tape and column-major for the
    // bulk tape. Throughput is `paths × samples` predicate evaluations
    // over the measured time — the per-sample inner loop with the RNG
    // taken out, so the ratio isolates the columnar evaluation win.
    let ndim = bounds.len();
    let n = samples as usize;
    let boxed: IntervalBox = bounds
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    let mut rng = SmallRng::seed_from_u64(0xB01D);
    let mut point = vec![0.0; ndim];
    let mut rows_flat: Vec<f64> = Vec::with_capacity(n * ndim);
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); ndim];
    for _ in 0..n {
        assert!(profile.sample_in(&boxed, &boxed, &mut rng, &mut point));
        rows_flat.extend_from_slice(&point);
        for (d, col) in cols.iter_mut().enumerate() {
            col.push(point[d]);
        }
    }
    // Interpreter-only predicates for the scalar/bulk rows: even under
    // `--features jit` those rows must keep timing the interpreter, so
    // the committed trajectory stays comparable across feature flags.
    let preds: Vec<CompiledPred> = cs
        .pcs()
        .iter()
        .map(CompiledPred::compile_interpreter_only)
        .collect();
    let (scalar_eval, hits_scalar) = best_of(reps, || {
        let mut hits = 0u64;
        for p in &preds {
            for row in rows_flat.chunks_exact(ndim) {
                if p.scalar().holds(row) {
                    hits += 1;
                }
            }
        }
        hits
    });
    let (bulk_eval, hits_bulk) = best_of(reps, || {
        let mut scratch = BulkScratch::new();
        let mut hits = 0u64;
        for p in &preds {
            hits += p.bulk().count_hits_with(&cols, n, &mut scratch);
        }
        hits
    });
    assert_eq!(
        hits_scalar, hits_bulk,
        "bulk must agree with the scalar tape"
    );
    let evals = (cs.len() * n) as f64;

    // JIT probe: the same batch through the *dispatching* entry point —
    // native kernels when `--features jit` is on and the CPU qualifies,
    // the interpreter fallback otherwise. The full compile also stamps
    // which backend actually ran, so the row is honest on any host.
    let preds_full: Vec<CompiledPred> = cs.pcs().iter().map(CompiledPred::compile).collect();
    let jit_backend = if preds_full.iter().all(|p| p.backend() == "jit") {
        "jit"
    } else {
        "bulk"
    };
    let (jit_eval, hits_jit) = best_of(reps, || {
        let mut hits = 0u64;
        for p in &preds_full {
            hits += p.count_hits(&cols, n);
        }
        hits
    });

    // End-to-end sampling probe: the same `hit_or_miss_plan` runs the
    // analyzer performs per factor, scalar closure vs columnar bulk
    // predicate — RNG draws included, estimates must match bit for bit.
    let plan = SamplePlan::serial(1);
    let (mc_scalar, ests_scalar) = best_of(reps, || {
        preds
            .iter()
            .map(|p| {
                hit_or_miss_plan(
                    &|x: &[f64]| p.scalar().holds(x),
                    &boxed,
                    &profile,
                    samples,
                    plan,
                )
            })
            .collect::<Vec<_>>()
    });
    let (mc_bulk, ests_bulk) = best_of(reps, || {
        preds
            .iter()
            .map(|p| hit_or_miss_plan_bulk(p, &boxed, &profile, samples, plan))
            .collect::<Vec<_>>()
    });
    let bulk_estimates_identical = ests_scalar == ests_bulk;
    let (mc_jit, ests_jit) = best_of(reps, || {
        preds_full
            .iter()
            .map(|p| hit_or_miss_plan_bulk(p, &boxed, &profile, samples, plan))
            .collect::<Vec<_>>()
    });
    let jit_estimates_identical =
        ests_jit == ests_scalar && ests_jit == ests_bulk && hits_jit == hits_bulk;

    // Paving probe: branch-and-prune every path condition over the full
    // domain box with a budget wide enough to give batching room.
    // Reference architecture (per-atom tapes, one box at a time) vs the
    // production batched whole-conjunction paver.
    let pave_cfg = PaverConfig {
        max_boxes: 128,
        ..PaverConfig::default()
    };
    let legacy: Vec<LegacyPaver> = cs
        .pcs()
        .iter()
        .map(|pc| LegacyPaver::new(pc, ndim, pave_cfg.clone()))
        .collect();
    let pavers: Vec<Paver> = cs
        .pcs()
        .iter()
        .map(|pc| Paver::new(pc, ndim, pave_cfg.clone()))
        .collect();
    let (pave_scalar, legacy_unsat) = best_of(reps, || {
        legacy
            .iter()
            .map(|p| p.pave(&boxed).is_unsat())
            .collect::<Vec<_>>()
    });
    let (pave_bulk, bulk_pavings) = best_of(reps, || {
        pavers.iter().map(|p| p.pave(&boxed)).collect::<Vec<_>>()
    });
    // Both pavers must agree on satisfiability — the pavings themselves
    // legitimately differ (the unified tape contracts the conjunction
    // jointly, the reference one atom at a time).
    for (pc_idx, (lu, bp)) in legacy_unsat.iter().zip(&bulk_pavings).enumerate() {
        assert_eq!(
            *lu,
            bp.is_unsat(),
            "{name}: pavers disagree on satisfiability of pc {pc_idx}"
        );
    }
    let pave_boxes = bulk_pavings.iter().map(Paving::len).sum();

    Row {
        subject: name.to_owned(),
        paths: cs.len(),
        samples,
        serial_secs: serial.as_secs_f64(),
        parallel_secs: parallel.as_secs_f64(),
        parallel_speedup: serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12),
        estimates_identical: est_serial == est_parallel && bulk_estimates_identical,
        bulk_estimates_identical,
        pred_tree_secs: pred_tree.as_secs_f64(),
        pred_tape_secs: pred_tape.as_secs_f64(),
        pred_tape_speedup: pred_tree.as_secs_f64() / pred_tape.as_secs_f64().max(1e-12),
        scalar_eval_secs: scalar_eval.as_secs_f64(),
        bulk_eval_secs: bulk_eval.as_secs_f64(),
        scalar_samples_per_sec: evals / scalar_eval.as_secs_f64().max(1e-12),
        bulk_samples_per_sec: evals / bulk_eval.as_secs_f64().max(1e-12),
        bulk_eval_speedup: scalar_eval.as_secs_f64() / bulk_eval.as_secs_f64().max(1e-12),
        mc_scalar_secs: mc_scalar.as_secs_f64(),
        mc_bulk_secs: mc_bulk.as_secs_f64(),
        mc_bulk_speedup: mc_scalar.as_secs_f64() / mc_bulk.as_secs_f64().max(1e-12),
        jit_backend: jit_backend.to_owned(),
        jit_eval_secs: jit_eval.as_secs_f64(),
        jit_samples_per_sec: evals / jit_eval.as_secs_f64().max(1e-12),
        jit_eval_speedup: bulk_eval.as_secs_f64() / jit_eval.as_secs_f64().max(1e-12),
        mc_jit_secs: mc_jit.as_secs_f64(),
        mc_jit_speedup: mc_bulk.as_secs_f64() / mc_jit.as_secs_f64().max(1e-12),
        jit_estimates_identical,
        pave_scalar_secs: pave_scalar.as_secs_f64(),
        pave_bulk_secs: pave_bulk.as_secs_f64(),
        pave_bulk_speedup: pave_scalar.as_secs_f64() / pave_bulk.as_secs_f64().max(1e-12),
        pave_boxes,
    }
}

/// Measures the tracing tax on the widest Table 3 subject (EGFR EPI,
/// 41 path conditions — the most span sites per analysis).
fn measure_obs_overhead(samples: u64, reps: u32) -> ObsOverhead {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "EGFR EPI")
        .expect("subject exists");
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache()
        .with_samples(samples)
        .with_seed(1);
    let (off, est_off) = best_of(reps, || {
        Analyzer::new(opts.clone())
            .analyze(&cs, &domain, &profile)
            .estimate
    });
    let (on, est_on) = best_of(reps, || {
        Analyzer::new(opts.clone().with_trace(true))
            .analyze(&cs, &domain, &profile)
            .estimate
    });
    ObsOverhead {
        subject: "obs_overhead".to_string(),
        samples,
        trace_off_secs: off.as_secs_f64(),
        trace_on_secs: on.as_secs_f64(),
        trace_on_ratio: on.as_secs_f64() / off.as_secs_f64().max(1e-12),
        estimates_identical: est_off == est_on,
    }
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs the hot-path protocol over every multi-PC Table 3 subject.
pub fn run(samples: u64, reps: u32) -> Summary {
    let mut rows = Vec::new();
    for subj in table3_subjects() {
        let (domain, cs) = subj.system_for(0, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        rows.push(measure_subject(subj.name, &domain, &cs, samples, reps));
    }
    Summary {
        // The shim's budget (honors RAYON_NUM_THREADS), not the raw core
        // count — parallel_speedup is bounded by *this* number.
        threads: rayon::current_num_threads(),
        samples,
        parallel_speedup_geomean: geomean(rows.iter().map(|r| r.parallel_speedup)),
        pred_tape_speedup_geomean: geomean(rows.iter().map(|r| r.pred_tape_speedup)),
        bulk_eval_speedup_geomean: geomean(rows.iter().map(|r| r.bulk_eval_speedup)),
        mc_bulk_speedup_geomean: geomean(rows.iter().map(|r| r.mc_bulk_speedup)),
        jit_eval_speedup_geomean: geomean(rows.iter().map(|r| r.jit_eval_speedup)),
        mc_jit_speedup_geomean: geomean(rows.iter().map(|r| r.mc_jit_speedup)),
        pave_bulk_speedup_geomean: geomean(rows.iter().map(|r| r.pave_bulk_speedup)),
        obs_overhead: measure_obs_overhead(samples, reps),
        rows,
    }
}

/// Serializes a summary to `path` as pretty JSON.
pub fn write_json(summary: &Summary, path: &str) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(summary).expect("serializable summary"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_consistent_rows() {
        let s = run(500, 1);
        assert!(!s.rows.is_empty());
        for r in &s.rows {
            assert!(r.estimates_identical, "{}: parallel diverged", r.subject);
            assert!(
                r.bulk_estimates_identical,
                "{}: bulk sampling diverged from the scalar tape",
                r.subject
            );
            assert!(
                r.jit_estimates_identical,
                "{}: JIT sampling diverged from the interpreter ({})",
                r.subject, r.jit_backend
            );
            assert!(r.jit_backend == "jit" || r.jit_backend == "bulk");
            assert!(r.serial_secs > 0.0 && r.pred_tape_secs > 0.0);
            assert!(r.bulk_eval_secs > 0.0 && r.mc_bulk_secs > 0.0);
            assert!(r.jit_eval_secs > 0.0 && r.mc_jit_secs > 0.0);
            assert!(r.jit_samples_per_sec > 0.0);
            assert!(r.bulk_samples_per_sec > 0.0 && r.scalar_samples_per_sec > 0.0);
            assert!(r.pave_scalar_secs > 0.0 && r.pave_bulk_secs > 0.0);
        }
        // EGFR EPI's whole-conjunction pavings are all unsat over the full
        // domain box, so its row legitimately reports zero boxes; the
        // corpus as a whole must still produce non-empty pavings.
        let total_boxes: usize = s.rows.iter().map(|r| r.pave_boxes).sum();
        assert!(total_boxes > 0, "no subject produced a non-empty paving");
        assert!(s.pred_tape_speedup_geomean > 0.0);
        assert!(s.bulk_eval_speedup_geomean > 0.0);
        assert!(s.pave_bulk_speedup_geomean > 0.0);
        assert!(
            s.obs_overhead.estimates_identical,
            "tracing changed an estimate"
        );
        assert!(s.obs_overhead.trace_off_secs > 0.0 && s.obs_overhead.trace_on_secs > 0.0);
        assert!(s.jit_eval_speedup_geomean > 0.0);
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"pred_tape_speedup\""));
        assert!(json.contains("\"bulk_eval_speedup\""));
        assert!(json.contains("\"bulk_estimates_identical\""));
        assert!(json.contains("\"jit_eval_speedup\""));
        assert!(json.contains("\"jit_estimates_identical\""));
        assert!(json.contains("\"pave_bulk_speedup\""));
        assert!(json.contains("\"subject\": \"obs_overhead\""));
        assert!(json.contains("\"trace_off_secs\""));
    }
}
