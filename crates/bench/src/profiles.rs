//! Samples-to-target under non-uniform usage profiles: profile-aligned
//! stratification (exact conditional sampling over mass-aligned strata,
//! the analyzer's native path) versus the classical *uniform-strata +
//! reweighting* baseline, emitted as `BENCH_profiles.json`.
//!
//! The baseline is what a profile-oblivious stratifier has to do: pave
//! by constraint geometry, sample each boundary stratum **uniformly**,
//! and recover the profile by importance-reweighting every sample with
//! the profile density (the mean-preserving form of rejection
//! resampling — same estimator, none of rejection's wasted draws, so the
//! baseline is if anything flattered). Its per-stratum variance picks up
//! the density's dispersion; the aligned engine's does not, because it
//! *samples from* the conditional profile and splits strata along the
//! discretized mass edges so allocation follows probability mass.
//!
//! Protocol per non-uniform subject (see
//! `qcoral_subjects::nonuniform_subjects`):
//!
//! 1. A reference aligned run at `reference_budget` samples/PC defines
//!    the target standard error.
//! 2. **Aligned**: smallest per-PC budget whose one-shot aligned run
//!    meets the target (doubling + bisection); the row records its
//!    `samples_drawn`.
//! 3. **Reweighted**: smallest per-PC budget whose uniform-strata
//!    reweighted run meets the same target (same paving cache, same
//!    doubling + bisection); the row records its samples.
//!
//! The emitted summary asserts nothing; the module tests and the CI
//! perf gate read the JSON.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use qcoral::{Analyzer, Options, Report};
use qcoral_constraints::{ConstraintSet, Domain, EvalTape};
use qcoral_icp::{domain_box, PaverConfig, PavingCache};
use qcoral_interval::IntervalBox;
use qcoral_mc::{mix_seed, proportional_split, Allocation, Estimate, Moments, UsageProfile};
use qcoral_subjects::nonuniform_subjects;
use qcoral_symexec::SymConfig;

/// One subject's samples-to-target measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Profiled subject name.
    pub subject: String,
    /// Target standard error both estimators chase.
    pub target_stderr: f64,
    /// The subject resolved exactly (zero variance) — nothing to chase.
    pub trivial: bool,
    /// Samples the winning aligned budget drew.
    pub aligned_samples: u64,
    /// Standard error the aligned run achieved.
    pub aligned_stderr: f64,
    /// Strata the aligned run sampled over (mass-aligned).
    pub aligned_strata: u64,
    /// Samples the winning reweighted budget drew.
    pub reweighted_samples: u64,
    /// Standard error the reweighted run achieved.
    pub reweighted_stderr: f64,
    /// `reweighted_samples / aligned_samples` (> 1 ⇒ aligned wins).
    pub samples_saved: f64,
}

/// The whole emitted document.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Reference per-PC budget defining each subject's target.
    pub reference_budget: u64,
    /// Per-subject rows.
    pub rows: Vec<Row>,
    /// Geometric mean of `samples_saved` over non-trivial subjects.
    pub samples_saved_geomean: f64,
    /// Number of non-trivial subjects where aligned needed fewer samples.
    pub aligned_wins: u64,
    /// Non-trivial subject count.
    pub contested: u64,
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

fn aligned_opts(samples: u64) -> Options {
    // Whole-PC stratification (no independence partitioning) so both
    // estimators see the same pavings; Proportional allocation spends
    // the budget by stratum probability mass.
    let mut opts = Options::strat().with_samples(samples).with_seed(1);
    opts.allocation = Allocation::Proportional;
    opts
}

fn aligned_run(
    cache: &Arc<PavingCache>,
    cs: &ConstraintSet,
    domain: &Domain,
    profile: &UsageProfile,
    samples: u64,
) -> Report {
    Analyzer::new(aligned_opts(samples))
        .with_paving_cache(Arc::clone(cache))
        .analyze(cs, domain, profile)
}

/// One uniform-strata reweighted run at `budget` samples per path
/// condition: inner boxes contribute their exact profile mass; boundary
/// boxes draw uniform samples, allocated by **volume** (all a
/// profile-oblivious stratifier can see), each sample weighted by the
/// profile density. Returns the composed estimate and samples drawn.
pub fn reweighted_run(
    cache: &Arc<PavingCache>,
    cs: &ConstraintSet,
    dbox: &IntervalBox,
    profile: &UsageProfile,
    paver: &PaverConfig,
    budget_per_pc: u64,
    seed: u64,
) -> (Estimate, u64) {
    let uniform = UsageProfile::uniform(dbox.ndim());
    let mut total = Estimate::ZERO;
    let mut samples = 0u64;
    for (pc_idx, pc) in cs.pcs().iter().enumerate() {
        let (paving, _) = cache.pave_cached_counted(pc, dbox, paver);
        if paving.is_unsat() {
            continue;
        }
        for b in &paving.inner {
            total = total.sum(Estimate::ONE.scale(profile.box_probability(b, dbox)));
        }
        if paving.boundary.is_empty() {
            continue;
        }
        let tape = EvalTape::compile(pc);
        let vols: Vec<f64> = paving.boundary.iter().map(IntervalBox::volume).collect();
        let counts = proportional_split(budget_per_pc, &vols);
        let mut point = vec![0.0; dbox.ndim()];
        for (j, b) in paving.boundary.iter().enumerate() {
            let n = counts[j].max(1);
            let mut rng =
                SmallRng::seed_from_u64(mix_seed(seed, ((pc_idx as u64) << 32) | j as u64));
            let mut moments = Moments::default();
            for _ in 0..n {
                if !uniform.sample_in(b, b, &mut rng, &mut point) {
                    break;
                }
                let g = if tape.holds(&point) {
                    profile.density(&point, dbox)
                } else {
                    0.0
                };
                moments.push(g);
            }
            samples += n;
            let vol = b.volume();
            let mean = vol * moments.mean();
            let variance = vol * vol * moments.sample_variance() / n as f64;
            total = total.sum(Estimate::new(mean, variance.max(0.0)));
        }
    }
    (total, samples)
}

/// Smallest per-PC budget whose runner meets `target`, by doubling then
/// bisecting (5 steps). Returns the winning `(stderr, samples)`.
fn samples_to_target(
    mut run: impl FnMut(u64) -> (f64, u64),
    target: f64,
    start: u64,
) -> (f64, u64) {
    let mut budget = start.max(2);
    let mut best = loop {
        let r = run(budget);
        if r.0 <= target || budget >= 1 << 24 {
            break r;
        }
        budget *= 2;
    };
    let (mut lo, mut hi) = (budget / 2, budget);
    for _ in 0..5 {
        if hi <= lo + 1 {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        let r = run(mid);
        if r.0 <= target {
            best = r;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best
}

/// Runs the aligned-vs-reweighted protocol over the non-uniform suite.
pub fn run(reference_budget: u64) -> Summary {
    let mut rows = Vec::new();
    for subj in nonuniform_subjects() {
        let (domain, cs, profile) = subj.system(&SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let dbox = domain_box(&domain);
        let cache = Arc::new(PavingCache::new());
        let reference = aligned_run(&cache, &cs, &domain, &profile, reference_budget);
        if reference.estimate.variance == 0.0 {
            rows.push(Row {
                subject: subj.name.to_owned(),
                target_stderr: 0.0,
                trivial: true,
                aligned_samples: reference.stats.samples_drawn,
                aligned_stderr: 0.0,
                aligned_strata: reference.stats.inner_boxes + reference.stats.boundary_boxes,
                reweighted_samples: reference.stats.samples_drawn,
                reweighted_stderr: 0.0,
                samples_saved: 1.0,
            });
            continue;
        }
        let target = reference.estimate.std_dev();
        let start = (reference_budget / 16).max(64);

        let mut aligned_best: Option<Report> = None;
        let (aligned_stderr, aligned_samples) = samples_to_target(
            |budget| {
                let r = aligned_run(&cache, &cs, &domain, &profile, budget);
                let out = (r.estimate.std_dev(), r.stats.samples_drawn);
                aligned_best = Some(r);
                out
            },
            target,
            start,
        );
        let paver = aligned_opts(0).paver;
        let (reweighted_stderr, reweighted_samples) = samples_to_target(
            |budget| {
                let (est, n) = reweighted_run(&cache, &cs, &dbox, &profile, &paver, budget, 1);
                (est.std_dev(), n)
            },
            target,
            start,
        );

        let stats = &aligned_best.as_ref().expect("at least one run").stats;
        rows.push(Row {
            subject: subj.name.to_owned(),
            target_stderr: target,
            trivial: false,
            aligned_samples,
            aligned_stderr,
            aligned_strata: stats.inner_boxes + stats.boundary_boxes,
            reweighted_samples,
            reweighted_stderr,
            samples_saved: reweighted_samples as f64 / aligned_samples.max(1) as f64,
        });
    }
    let contested: Vec<&Row> = rows.iter().filter(|r| !r.trivial).collect();
    Summary {
        reference_budget,
        samples_saved_geomean: geomean(contested.iter().map(|r| r.samples_saved)),
        aligned_wins: contested
            .iter()
            .filter(|r| r.aligned_samples < r.reweighted_samples)
            .count() as u64,
        contested: contested.len() as u64,
        rows,
    }
}

/// Serializes a summary to `path` as pretty JSON.
pub fn write_json(summary: &Summary, path: &str) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(summary).expect("serializable summary"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reweighted baseline is unbiased: on a closed-form subject its
    /// estimate agrees with the exact probability within its own 3σ.
    #[test]
    fn reweighted_baseline_is_unbiased() {
        use qcoral_constraints::parse::parse_system;
        use qcoral_mc::Dist;
        let sys = parse_system("var x in [0, 1]; pc sin(x) > 0.5;").unwrap();
        let profile = UsageProfile::uniform(1).with_dist(0, Dist::normal(0.7, 0.15));
        let dbox = domain_box(&sys.domain);
        let cache = Arc::new(PavingCache::new());
        let paver = PaverConfig::default();
        let (est, n) = reweighted_run(
            &cache,
            &sys.constraint_set,
            &dbox,
            &profile,
            &paver,
            40_000,
            7,
        );
        assert!(n >= 40_000);
        let d = Dist::normal(0.7, 0.15);
        let truth = d.mass(
            &qcoral_interval::Interval::new(std::f64::consts::FRAC_PI_6, 1.0),
            &qcoral_interval::Interval::new(0.0, 1.0),
        );
        assert!(
            (est.mean - truth).abs() <= 3.0 * est.std_dev() + 0.01,
            "reweighted {} ± {} vs truth {truth}",
            est.mean,
            est.std_dev()
        );
    }

    /// Smoke the full protocol at a small budget: rows come out
    /// consistent and the aligned engine wins on most subjects.
    #[test]
    fn emits_consistent_rows() {
        let s = run(2_000);
        assert!(
            s.contested >= 3,
            "need ≥3 contested subjects: {:#?}",
            s.rows
        );
        for r in &s.rows {
            if r.trivial {
                continue;
            }
            assert!(
                r.aligned_stderr <= r.target_stderr + 1e-15,
                "{}: aligned missed its target",
                r.subject
            );
            assert!(r.aligned_samples > 0 && r.reweighted_samples > 0);
        }
        assert!(
            s.samples_saved_geomean > 1.0,
            "aligned must beat reweighting on average: {:#?}",
            s.rows
        );
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"samples_saved\""));
    }
}
