//! Samples-to-target: the iterative, variance-driven engine
//! (`Analyzer::analyze_iterative`) versus static `Proportional`
//! allocation on the VolComp suite, emitted as `BENCH_adaptive.json`.
//!
//! Protocol per subject (assertion 0 of every Table 3 subject with a
//! non-empty target set):
//!
//! 1. A *reference* one-shot run at a fixed budget defines the target
//!    standard error — so every subject chases a goal it can actually
//!    reach, whatever its variance scale.
//! 2. **Static**: the smallest one-shot `Proportional` budget whose
//!    composed standard error meets the target, found by doubling and
//!    then bisecting (5 steps); the row records the samples that budget
//!    draws.
//! 3. **Adaptive**: `analyze_iterative` from a small initial round with
//!    the same target; the row records its actual `samples_drawn` and
//!    round count.
//!
//! A subject is *mixed* when its pavings contain both exact (inner) and
//! noisy (boundary) strata — exactly where variance-driven reallocation
//! should shine, because the static split keeps paying for strata that
//! stopped contributing variance after the first samples. The emitted
//! summary asserts nothing; `tests/statistics.rs` and the acceptance
//! check read the JSON.

use std::sync::Arc;

use serde::Serialize;

use qcoral::{Analyzer, Options, Report};
use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_icp::PavingCache;
use qcoral_mc::{Allocation, UsageProfile};
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

/// One subject's samples-to-target measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Target standard error both engines chase.
    pub target_stderr: f64,
    /// Whether the subject's pavings mix exact and noisy strata.
    pub mixed: bool,
    /// Samples the winning static `Proportional` budget drew.
    pub static_samples: u64,
    /// Standard error that static run achieved.
    pub static_stderr: f64,
    /// Samples the adaptive engine drew to meet the same target.
    pub adaptive_samples: u64,
    /// Standard error the adaptive run achieved.
    pub adaptive_stderr: f64,
    /// Rounds the adaptive engine executed.
    pub adaptive_rounds: u64,
    /// Whether the adaptive run reported `target_met`.
    pub adaptive_target_met: bool,
    /// `static_samples / adaptive_samples` (> 1 ⇒ adaptive wins).
    pub samples_saved: f64,
}

/// The whole emitted document.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Reference one-shot budget defining each subject's target.
    pub reference_budget: u64,
    /// Initial-round/refinement budget of the adaptive engine.
    pub round_budget: u64,
    /// Per-subject rows.
    pub rows: Vec<Row>,
    /// Geometric mean of `samples_saved` over the mixed subjects.
    pub mixed_samples_saved_geomean: f64,
    /// Adaptive drew no more samples than static on every mixed subject.
    pub adaptive_wins_all_mixed: bool,
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

fn static_opts(samples: u64) -> Options {
    let mut opts = Options::strat_partcache()
        .with_samples(samples)
        .with_seed(1);
    opts.allocation = Allocation::Proportional;
    opts
}

/// One-shot static run at `samples` per factor, re-using the shared
/// paving cache across budgets (pavings are budget-independent).
fn static_run(
    cache: &Arc<PavingCache>,
    cs: &ConstraintSet,
    domain: &Domain,
    samples: u64,
) -> Report {
    Analyzer::new(static_opts(samples))
        .with_paving_cache(Arc::clone(cache))
        .analyze(cs, domain, &UsageProfile::uniform(domain.len()))
}

/// Smallest one-shot budget meeting `target`, by doubling then bisecting.
fn static_samples_to_target(
    cache: &Arc<PavingCache>,
    cs: &ConstraintSet,
    domain: &Domain,
    target: f64,
    start: u64,
) -> Report {
    let mut budget = start;
    let mut best = loop {
        let r = static_run(cache, cs, domain, budget);
        if r.estimate.std_dev() <= target || budget >= 1 << 24 {
            break r;
        }
        budget *= 2;
    };
    // Bisect between the last failing and the first succeeding budget.
    let (mut lo, mut hi) = (budget / 2, budget);
    for _ in 0..5 {
        if hi <= lo + 1 {
            break;
        }
        let mid = lo + (hi - lo) / 2;
        let r = static_run(cache, cs, domain, mid);
        if r.estimate.std_dev() <= target {
            best = r;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best
}

/// Runs the samples-to-target protocol over the VolComp suite.
pub fn run(reference_budget: u64, round_budget: u64) -> Summary {
    let mut rows = Vec::new();
    for subj in table3_subjects() {
        let (domain, cs) = subj.system_for(0, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let profile = UsageProfile::uniform(domain.len());
        // Shared paving cache: the search re-paves nothing.
        let cache = Arc::new(PavingCache::new());
        let reference = static_run(&cache, &cs, &domain, reference_budget);
        let mixed = reference.stats.inner_boxes > 0 && reference.stats.boundary_boxes > 0;
        if reference.estimate.variance == 0.0 {
            // Fully exact subject: both engines are trivially done after
            // one round; nothing to chase.
            rows.push(Row {
                subject: subj.name.to_owned(),
                target_stderr: 0.0,
                mixed: false,
                static_samples: reference.stats.samples_drawn,
                static_stderr: 0.0,
                adaptive_samples: reference.stats.samples_drawn,
                adaptive_stderr: 0.0,
                adaptive_rounds: 1,
                adaptive_target_met: true,
                samples_saved: 1.0,
            });
            continue;
        }
        let target = reference.estimate.std_dev();

        let static_best = static_samples_to_target(&cache, &cs, &domain, target, round_budget);

        let adaptive_opts = static_opts(round_budget)
            .with_target_stderr(target)
            .with_round_budget(round_budget)
            .with_max_rounds(4_096);
        let adaptive = Analyzer::new(adaptive_opts)
            .with_paving_cache(Arc::clone(&cache))
            .analyze_iterative(&cs, &domain, &profile);

        rows.push(Row {
            subject: subj.name.to_owned(),
            target_stderr: target,
            mixed,
            static_samples: static_best.stats.samples_drawn,
            static_stderr: static_best.estimate.std_dev(),
            adaptive_samples: adaptive.stats.samples_drawn,
            adaptive_stderr: adaptive.estimate.std_dev(),
            adaptive_rounds: adaptive.stats.rounds,
            adaptive_target_met: adaptive.stats.target_met,
            samples_saved: static_best.stats.samples_drawn as f64
                / adaptive.stats.samples_drawn.max(1) as f64,
        });
    }
    Summary {
        reference_budget,
        round_budget,
        mixed_samples_saved_geomean: geomean(
            rows.iter().filter(|r| r.mixed).map(|r| r.samples_saved),
        ),
        adaptive_wins_all_mixed: rows
            .iter()
            .filter(|r| r.mixed)
            .all(|r| r.adaptive_samples <= r.static_samples),
        rows,
    }
}

/// Serializes a summary to `path` as pretty JSON.
pub fn write_json(summary: &Summary, path: &str) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(summary).expect("serializable summary"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_consistent_rows() {
        let s = run(4_000, 1_000);
        assert!(!s.rows.is_empty());
        assert!(s.rows.iter().any(|r| r.mixed), "suite has mixed subjects");
        for r in &s.rows {
            assert!(
                r.adaptive_target_met,
                "{}: adaptive never reached its target (σ {} vs {})",
                r.subject, r.adaptive_stderr, r.target_stderr
            );
            assert!(
                r.adaptive_stderr <= r.target_stderr + 1e-15,
                "{}",
                r.subject
            );
        }
        assert!(
            s.adaptive_wins_all_mixed,
            "adaptive must not need more samples than static on mixed subjects: {:#?}",
            s.rows
        );
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"samples_saved\""));
    }
}
