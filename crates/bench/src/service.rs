//! Service throughput/latency trajectory: the VolComp subjects queried
//! through a loopback `qcoral-service`, cold vs warm vs
//! warm-after-restart, emitted as `BENCH_service.json`.
//!
//! The point being measured is the tentpole mechanism: a warm service
//! answers recurring factors from the persistent cross-run store with
//! **zero new pavings and zero new samples**, so warm latency is pure
//! orchestration cost (symbolic execution + wire + cache lookups) and
//! materially below cold latency, which pays for paving and sampling.

use std::time::Instant;

use serde::Serialize;

use qcoral::Options;
use qcoral_service::{Client, ServiceConfig};
use qcoral_subjects::table3_subjects;

/// One subject's loopback measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name (assertion 0 of each Table 3 subject).
    pub subject: String,
    /// First-ever query: pays paving + sampling.
    pub cold_ms: f64,
    /// Same query, same server: answered from the in-memory store.
    pub warm_ms: f64,
    /// Same query after a server restart from the disk snapshot.
    pub warm_restart_ms: f64,
    /// `cold_ms / warm_ms`.
    pub warm_speedup: f64,
    /// Pavings requested by the cold run.
    pub cold_pavings: u64,
    /// Sampling budget charged by the cold run.
    pub cold_samples: u64,
    /// Pavings requested by the warm run (must be 0).
    pub warm_pavings: u64,
    /// Sampling budget charged by the warm run (must be 0).
    pub warm_samples: u64,
    /// Factor-store hits of the warm run.
    pub warm_store_hits: u64,
    /// Pavings requested by the restarted-warm run (must be 0).
    pub warm_restart_pavings: u64,
    /// Sampling budget charged by the restarted-warm run (must be 0).
    pub warm_restart_samples: u64,
    /// Cold/warm/restart estimates all bit-identical.
    pub estimates_identical: bool,
}

/// The whole emitted document.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Worker threads of the benchmarked server.
    pub workers: usize,
    /// Sample budget per factor.
    pub samples: u64,
    /// Per-subject rows.
    pub rows: Vec<Row>,
    /// Geometric mean of `warm_speedup`.
    pub warm_speedup_geomean: f64,
    /// Total cold latency (ms).
    pub cold_total_ms: f64,
    /// Total warm latency (ms).
    pub warm_total_ms: f64,
    /// Total warm-after-restart latency (ms).
    pub warm_restart_total_ms: f64,
    /// Wall time of a worst-case crash recovery: every benchmarked
    /// factor estimate replayed from the write-ahead log against an
    /// empty snapshot (no snapshot fast path).
    pub recovery_secs: f64,
    /// WAL entries replayed by that recovery.
    pub wal_replay_entries: u64,
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

struct Measured {
    ms: f64,
    pavings: u64,
    samples: u64,
    store_hits: u64,
    estimate: qcoral::Estimate,
}

fn query(client: &mut Client, source: &str, opts: &Options) -> Measured {
    let t0 = Instant::now();
    let r = client
        .analyze_program(source, opts.clone(), None, None)
        .expect("bench query");
    Measured {
        ms: t0.elapsed().as_secs_f64() * 1e3,
        pavings: r.report.stats.pavings,
        samples: r.report.stats.samples_drawn,
        store_hits: r.report.stats.factor_store_hits,
        estimate: r.report.estimate,
    }
}

/// Runs the cold/warm/restart protocol over the Table 3 subjects.
///
/// # Panics
///
/// Panics if the service misbehaves: estimates not bit-identical across
/// cold/warm/restart, or warm runs that pave or sample.
pub fn run(samples: u64) -> Summary {
    let snapshot =
        std::env::temp_dir().join(format!("qcoral-bench-service-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let workers = cfg.workers;
    let opts = Options::default().with_samples(samples).with_seed(1);

    let subjects: Vec<(String, String)> = table3_subjects()
        .iter()
        .map(|s| (s.name.to_string(), s.source_for(0)))
        .collect();

    // Cold + warm against one server.
    let server = qcoral_service::Server::start(cfg.clone()).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let cold: Vec<Measured> = subjects
        .iter()
        .map(|(_, src)| query(&mut client, src, &opts))
        .collect();
    let warm: Vec<Measured> = subjects
        .iter()
        .map(|(_, src)| query(&mut client, src, &opts))
        .collect();
    server.shutdown(); // persists the snapshot

    // Warm-after-restart against a fresh server sharing only the disk
    // snapshot.
    let server = qcoral_service::Server::start(cfg).expect("rebind loopback");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    let restart: Vec<Measured> = subjects
        .iter()
        .map(|(_, src)| query(&mut client, src, &opts))
        .collect();
    server.shutdown();

    // Crash-recovery trajectory: re-encode everything the run persisted
    // as a write-ahead log against an *empty* snapshot path and time a
    // full recovery — the worst case, where nothing comes from the
    // snapshot fast path and every entry is replayed line by line.
    let final_store = qcoral_service::PersistentStore::open(Some(snapshot.clone()), 1 << 20);
    let entries = final_store.factor_store().entries();
    drop(final_store);
    let _ = std::fs::remove_file(&snapshot);
    let probe = std::env::temp_dir().join(format!(
        "qcoral-bench-service-walprobe-{}.json",
        std::process::id()
    ));
    let probe_wal = qcoral_service::store::wal_path(&probe);
    let _ = std::fs::remove_file(&probe);
    let lines: String = entries
        .iter()
        .flat_map(|e| [qcoral_service::store::encode_wal_line(e), "\n".to_string()])
        .collect();
    std::fs::write(&probe_wal, lines).expect("write probe wal");
    let t0 = Instant::now();
    let recovered = qcoral_service::PersistentStore::open(Some(probe.clone()), 1 << 20);
    let recovery_secs = t0.elapsed().as_secs_f64();
    let report = recovered.recovery_report().clone();
    assert_eq!(
        report.wal_replayed_entries as usize,
        entries.len(),
        "every WAL entry must replay"
    );
    assert_eq!(report.wal_corrupt_entries, 0);
    drop(recovered);
    let _ = std::fs::remove_file(&probe);
    let _ = std::fs::remove_file(&probe_wal);

    let rows: Vec<Row> = subjects
        .iter()
        .zip(cold.iter().zip(warm.iter().zip(restart.iter())))
        .map(|((name, _), (c, (w, r)))| {
            let identical = c.estimate == w.estimate && c.estimate == r.estimate;
            assert!(identical, "{name}: estimates diverged across cache tiers");
            assert_eq!(w.pavings, 0, "{name}: warm run paved");
            assert_eq!(w.samples, 0, "{name}: warm run sampled");
            assert_eq!(r.pavings, 0, "{name}: restarted run paved");
            assert_eq!(r.samples, 0, "{name}: restarted run sampled");
            Row {
                subject: name.clone(),
                cold_ms: c.ms,
                warm_ms: w.ms,
                warm_restart_ms: r.ms,
                warm_speedup: c.ms / w.ms,
                cold_pavings: c.pavings,
                cold_samples: c.samples,
                warm_pavings: w.pavings,
                warm_samples: w.samples,
                warm_store_hits: w.store_hits,
                warm_restart_pavings: r.pavings,
                warm_restart_samples: r.samples,
                estimates_identical: identical,
            }
        })
        .collect();

    Summary {
        workers,
        samples,
        warm_speedup_geomean: geomean(rows.iter().map(|r| r.warm_speedup)),
        cold_total_ms: rows.iter().map(|r| r.cold_ms).sum(),
        warm_total_ms: rows.iter().map(|r| r.warm_ms).sum(),
        warm_restart_total_ms: rows.iter().map(|r| r.warm_restart_ms).sum(),
        recovery_secs,
        wal_replay_entries: report.wal_replayed_entries,
        rows,
    }
}

/// Serializes a summary to `path` as pretty JSON.
pub fn write_json(summary: &Summary, path: &str) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(summary).expect("serializable summary"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_warm_restart_protocol_holds() {
        let s = run(400);
        assert!(!s.rows.is_empty());
        for r in &s.rows {
            assert!(r.estimates_identical);
            assert_eq!(r.warm_pavings, 0);
            assert_eq!(r.warm_samples, 0);
            assert_eq!(r.warm_restart_samples, 0);
        }
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"warm_speedup\""));
    }
}
