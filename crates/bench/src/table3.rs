//! Table 3: comparison of adaptive integration (NIntegrate substitute),
//! interval bounding (VolComp substitute) and qCORAL{STRAT,PARTCACHE}
//! (30 k samples) on the VolComp-suite subjects.

use std::collections::BTreeSet;
use std::time::Instant;

use serde::Serialize;

use qcoral::{Analyzer, Options};
use qcoral_baselines::{adaptive_probability, volcomp_bounds, AdaptiveConfig, VolCompConfig};
use qcoral_constraints::{BinOp, Expr, UnOp};
use qcoral_icp::domain_box;
use qcoral_mc::UsageProfile;
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

/// One table row: a subject/assertion pair under all three methods.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Assertion label.
    pub assertion: String,
    /// Number of target paths.
    pub paths: usize,
    /// Total conjuncts across the target PCs.
    pub ands: usize,
    /// Total arithmetic operations (and distinct operator kinds).
    pub ops: usize,
    /// Distinct operator kinds appearing.
    pub distinct_ops: usize,
    /// Adaptive-integration estimate.
    pub adaptive_value: f64,
    /// Whether the adaptive integrator met its accuracy goal.
    pub adaptive_converged: bool,
    /// Adaptive-integration time (s).
    pub adaptive_secs: f64,
    /// Interval-bounding lower bound.
    pub volcomp_lo: f64,
    /// Interval-bounding upper bound.
    pub volcomp_hi: f64,
    /// Interval-bounding time (s).
    pub volcomp_secs: f64,
    /// qCORAL mean estimate (averaged over repetitions).
    pub qcoral_estimate: f64,
    /// qCORAL mean reported σ.
    pub qcoral_sigma: f64,
    /// qCORAL mean time (s).
    pub qcoral_secs: f64,
}

/// Runs the Table 3 protocol: every subject × assertion with the given
/// qCORAL sample budget (paper: 30 000) and repetition count (paper: 30).
pub fn run(samples: u64, reps: u64, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for subj in table3_subjects() {
        for idx in 0..subj.assertions.len() {
            rows.push(run_one(&subj, idx, samples, reps, seed));
        }
    }
    rows
}

/// Runs one subject/assertion cell.
pub fn run_one(
    subj: &qcoral_subjects::Table3Subject,
    idx: usize,
    samples: u64,
    reps: u64,
    seed: u64,
) -> Row {
    let (domain, cs) = subj.system_for(idx, &SymConfig::default());
    let dbox = domain_box(&domain);
    let profile = UsageProfile::uniform(domain.len());

    let t0 = Instant::now();
    let adaptive = adaptive_probability(&cs, &dbox, &AdaptiveConfig::default());
    let adaptive_secs = t0.elapsed().as_secs_f64();

    // Scale the per-PC bounding budget down on many-path subjects so the
    // harness stays interactive (the budget pressure is itself the
    // paper's observed VolComp behaviour on PACK/VOL-class subjects).
    let volcomp_cfg = VolCompConfig {
        max_boxes_per_pc: (8_192 / cs.len().max(1)).max(64),
        time_budget: std::time::Duration::from_millis(500),
        ..VolCompConfig::default()
    };
    let t1 = Instant::now();
    let bounds = volcomp_bounds(&cs, &dbox, &volcomp_cfg);
    let volcomp_secs = t1.elapsed().as_secs_f64();

    let mut est_sum = 0.0;
    let mut sigma_sum = 0.0;
    let mut secs_sum = 0.0;
    for rep in 0..reps {
        let opts = Options::strat_partcache()
            .with_samples(samples)
            .with_seed(seed ^ (rep + 1));
        let report = Analyzer::new(opts).analyze(&cs, &domain, &profile);
        est_sum += report.estimate.mean;
        sigma_sum += report.estimate.std_dev();
        secs_sum += report.wall.as_secs_f64();
    }

    let (ops, distinct) = op_stats(&cs);
    Row {
        subject: subj.name.to_owned(),
        assertion: subj.assertions[idx].0.to_owned(),
        paths: cs.len(),
        ands: cs.atom_count(),
        ops,
        distinct_ops: distinct,
        adaptive_value: adaptive.value,
        adaptive_converged: adaptive.converged,
        adaptive_secs,
        volcomp_lo: bounds.lo,
        volcomp_hi: bounds.hi,
        volcomp_secs,
        qcoral_estimate: est_sum / reps as f64,
        qcoral_sigma: sigma_sum / reps as f64,
        qcoral_secs: secs_sum / reps as f64,
    }
}

/// Counts arithmetic operation nodes and the distinct operator kinds —
/// the paper's "Num. Ar. Ops." column, e.g. "19,125 (3)".
fn op_stats(cs: &qcoral_constraints::ConstraintSet) -> (usize, usize) {
    fn walk(e: &Expr, total: &mut usize, kinds: &mut BTreeSet<String>) {
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Unary(op, c) => {
                if !matches!(op, UnOp::Neg) {
                    *total += 1;
                    kinds.insert(op.name().to_owned());
                } else {
                    *total += 1;
                    kinds.insert("-".to_owned());
                }
                walk(c, total, kinds);
            }
            Expr::Binary(op, a, b) => {
                *total += 1;
                kinds.insert(
                    match op {
                        BinOp::Add => "+",
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                        BinOp::Pow => "^",
                        BinOp::Min => "min",
                        BinOp::Max => "max",
                        BinOp::Atan2 => "atan2",
                    }
                    .to_owned(),
                );
                walk(a, total, kinds);
                walk(b, total, kinds);
            }
        }
    }
    let mut total = 0;
    let mut kinds = BTreeSet::new();
    for pc in cs.pcs() {
        for atom in pc.atoms() {
            walk(atom.lhs(), &mut total, &mut kinds);
            walk(atom.rhs(), &mut total, &mut kinds);
        }
    }
    (total, kinds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_subjects::table3_subjects;

    #[test]
    fn qcoral_estimate_within_volcomp_bounds() {
        // The paper's consistency check (§6.2): qCORAL estimates fall
        // within the VolComp intervals (up to σ).
        let subjects = table3_subjects();
        let egfr_simple = subjects
            .iter()
            .find(|s| s.name == "EGFR EPI (SIMPLE)")
            .unwrap();
        let row = run_one(egfr_simple, 0, 10_000, 3, 11);
        assert!(
            row.qcoral_estimate >= row.volcomp_lo - 3.0 * row.qcoral_sigma - 1e-6
                && row.qcoral_estimate <= row.volcomp_hi + 3.0 * row.qcoral_sigma + 1e-6,
            "estimate {} outside bounds [{}, {}]",
            row.qcoral_estimate,
            row.volcomp_lo,
            row.volcomp_hi
        );
    }

    #[test]
    fn methods_agree_on_coronary_tail() {
        let subjects = table3_subjects();
        let coronary = subjects.iter().find(|s| s.name == "CORONARY").unwrap();
        let row = run_one(coronary, 0, 10_000, 3, 5);
        // All three see a small-probability event.
        assert!(row.qcoral_estimate < 0.2, "{row:?}");
        assert!(row.volcomp_hi < 0.5, "{row:?}");
        assert!(row.adaptive_value < 0.3, "{row:?}");
    }

    #[test]
    fn pack_count_rows_have_zero_ops() {
        let subjects = table3_subjects();
        let pack = subjects.iter().find(|s| s.name == "PACK").unwrap();
        let (_, cs) = pack.system_for(0, &SymConfig::default());
        let (_ops, _distinct) = op_stats(&cs);
        // Conjuncts are `total-so-far ⋚ 6` where total is an explicit sum
        // of weights — additions count, but no transcendental kinds.
        assert!(cs.atom_count() > 0);
    }
}
