//! Figure 2 / Table 1: the worked stratification example.
//!
//! The constraint `x ≤ −y ∧ y ≤ x` over `[−1, 1]²` has probability
//! exactly 1/4. Plain hit-or-miss with 10⁴ samples is compared against
//! stratified sampling over the paper's four boxes (b1–b4) and over the
//! boxes our own ICP paver produces.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use qcoral_constraints::parse::parse_system;
use qcoral_icp::{domain_box, pave, PaverConfig};
use qcoral_interval::{Interval, IntervalBox};
use qcoral_mc::{hit_or_miss, stratified, Allocation, Estimate, Stratum, UsageProfile};

/// One row of the comparison.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Method label.
    pub method: String,
    /// Number of strata used (1 = plain).
    pub strata: usize,
    /// Estimated probability.
    pub mean: f64,
    /// Estimator variance.
    pub variance: f64,
}

/// Runs the Figure 2 example with the given total sample budget.
pub fn run(samples: u64, seed: u64) -> Vec<Row> {
    let sys = parse_system(
        "var x in [-1, 1]; var y in [-1, 1];
         pc x <= -y && y <= x;",
    )
    .expect("static source");
    let pc = &sys.constraint_set.pcs()[0];
    let domain = domain_box(&sys.domain);
    let profile = UsageProfile::uniform(2);
    let mut pred = |p: &[f64]| pc.holds(p);

    let mut rows = Vec::new();

    let mut rng = SmallRng::seed_from_u64(seed);
    let plain = hit_or_miss(&mut pred, &domain, &profile, samples, &mut rng);
    rows.push(row("hit-or-miss (plain)", 1, plain));

    // The paper's Table 1 boxes.
    let iv = Interval::new;
    let paper_boxes = vec![
        Stratum::boundary([iv(-1.0, -0.5), iv(-1.0, -0.5)].into_iter().collect()),
        Stratum::inner([iv(-0.5, 0.5), iv(-1.0, -0.5)].into_iter().collect()),
        Stratum::boundary([iv(0.5, 1.0), iv(-1.0, -0.5)].into_iter().collect()),
        Stratum::boundary([iv(-0.5, 0.5), iv(-0.5, 0.0)].into_iter().collect()),
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let strat_paper = stratified(
        &mut pred,
        &paper_boxes,
        &domain,
        &profile,
        samples,
        Allocation::EqualPerStratum,
        &mut rng,
    );
    rows.push(row("stratified (paper's 4 boxes)", 4, strat_paper));

    // Boxes from our own paver (RealPaver-substitute defaults).
    let paving = pave(pc, &domain, &PaverConfig::default());
    let strata: Vec<Stratum> = paving
        .inner
        .iter()
        .cloned()
        .map(Stratum::inner)
        .chain(paving.boundary.iter().cloned().map(Stratum::boundary))
        .collect();
    let n = strata.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let strat_icp = stratified(
        &mut pred,
        &strata,
        &domain,
        &profile,
        samples,
        Allocation::EqualPerStratum,
        &mut rng,
    );
    rows.push(row("stratified (ICP paving)", n, strat_icp));
    rows
}

fn row(method: &str, strata: usize, e: Estimate) -> Row {
    Row {
        method: method.to_owned(),
        strata,
        mean: e.mean,
        variance: e.variance,
    }
}

/// The paper's per-box Table 1 (weights and per-box estimates) for the
/// four-box stratification.
pub fn per_box_table(samples_per_box: u64, seed: u64) -> Vec<(String, f64, f64, f64)> {
    let sys = parse_system(
        "var x in [-1, 1]; var y in [-1, 1];
         pc x <= -y && y <= x;",
    )
    .expect("static source");
    let pc = &sys.constraint_set.pcs()[0];
    let domain = domain_box(&sys.domain);
    let profile = UsageProfile::uniform(2);
    let iv = Interval::new;
    let boxes: Vec<(&str, IntervalBox, bool)> = vec![
        (
            "b1",
            [iv(-1.0, -0.5), iv(-1.0, -0.5)].into_iter().collect(),
            false,
        ),
        (
            "b2",
            [iv(-0.5, 0.5), iv(-1.0, -0.5)].into_iter().collect(),
            true,
        ),
        (
            "b3",
            [iv(0.5, 1.0), iv(-1.0, -0.5)].into_iter().collect(),
            false,
        ),
        (
            "b4",
            [iv(-0.5, 0.5), iv(-0.5, 0.0)].into_iter().collect(),
            false,
        ),
    ];
    let mut out = Vec::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for (name, boxed, certain) in boxes {
        let w = profile.box_probability(&boxed, &domain);
        let est = if certain {
            Estimate::ONE
        } else {
            hit_or_miss(
                &mut |p| pc.holds(p),
                &boxed,
                &profile,
                samples_per_box,
                &mut rng,
            )
        };
        out.push((name.to_owned(), w, est.mean, est.variance));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratification_beats_plain() {
        let rows = run(10_000, 42);
        assert_eq!(rows.len(), 3);
        let plain = &rows[0];
        let strat = &rows[1];
        let icp = &rows[2];
        for r in [plain, strat, icp] {
            assert!((r.mean - 0.25).abs() < 0.02, "{}: {}", r.method, r.mean);
        }
        assert!(strat.variance < plain.variance / 2.0);
        assert!(icp.variance < plain.variance);
    }

    #[test]
    fn per_box_matches_paper_structure() {
        let t = per_box_table(2_500, 7);
        assert_eq!(t.len(), 4);
        // Weights: 1/16, 2/16, 1/16, 2/16 of the domain.
        assert!((t[0].1 - 0.0625).abs() < 1e-12);
        assert!((t[1].1 - 0.125).abs() < 1e-12);
        // b2 is the inner box: exact 1 with variance 0.
        assert_eq!(t[1].2, 1.0);
        assert_eq!(t[1].3, 0.0);
    }
}
