//! Table 2: micro-benchmark accuracy on geometric solids.
//!
//! For each solid and each sample budget, the full qCORAL configuration
//! is run `reps` times with distinct seeds; the table reports the mean
//! estimated volume and the standard deviation *of the estimates across
//! repetitions* (the paper's protocol: "We run 30 times each
//! configuration and reported the average value and standard deviation
//! over the population of estimated volumes").

use serde::Serialize;

use qcoral::{Analyzer, Options};
use qcoral_mc::UsageProfile;
use qcoral_subjects::solids::{all_solids, Solid};

/// One table row: a solid at one sample budget.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Table group label.
    pub group: String,
    /// Closed-form reference volume.
    pub analytic: f64,
    /// Sample budget per repetition.
    pub samples: u64,
    /// Mean estimated volume across repetitions.
    pub estimate: f64,
    /// Standard deviation of the volume estimates across repetitions.
    pub error_sigma: f64,
    /// Mean per-repetition wall time in seconds.
    pub secs: f64,
}

/// Runs the Table 2 protocol.
pub fn run(sample_budgets: &[u64], reps: u64, seed: u64) -> Vec<Row> {
    let solids = all_solids();
    let mut rows = Vec::new();
    for solid in &solids {
        for &samples in sample_budgets {
            rows.push(run_one(solid, samples, reps, seed));
        }
    }
    rows
}

/// Runs one solid at one sample budget.
pub fn run_one(solid: &Solid, samples: u64, reps: u64, seed: u64) -> Row {
    let profile = UsageProfile::uniform(solid.domain.len());
    let dom_vol = solid.domain_volume();
    let mut volumes = Vec::with_capacity(reps as usize);
    let mut secs = 0.0;
    for rep in 0..reps {
        let opts = Options::strat_partcache()
            .with_samples(samples)
            .with_seed(seed ^ (rep + 1));
        let report = Analyzer::new(opts).analyze(&solid.constraint_set, &solid.domain, &profile);
        volumes.push(report.estimate.mean * dom_vol);
        secs += report.wall.as_secs_f64();
    }
    let mean = volumes.iter().sum::<f64>() / reps as f64;
    let var = if reps > 1 {
        volumes.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (reps - 1) as f64
    } else {
        0.0
    };
    Row {
        subject: solid.name.to_owned(),
        group: solid.group.label().to_owned(),
        analytic: solid.analytic_volume,
        samples,
        estimate: mean,
        error_sigma: var.sqrt(),
        secs: secs / reps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_subjects::solids::all_solids;

    #[test]
    fn cube_is_exact_at_any_budget() {
        let cube = all_solids().into_iter().find(|s| s.name == "Cube").unwrap();
        let row = run_one(&cube, 1_000, 3, 1);
        assert_eq!(row.estimate, 8.0);
        assert_eq!(row.error_sigma, 0.0);
    }

    #[test]
    fn sigma_shrinks_with_samples() {
        let sphere = all_solids()
            .into_iter()
            .find(|s| s.name == "Sphere")
            .unwrap();
        let small = run_one(&sphere, 1_000, 8, 2);
        let large = run_one(&sphere, 64_000, 8, 2);
        assert!(
            large.error_sigma < small.error_sigma,
            "σ must shrink: {} vs {}",
            large.error_sigma,
            small.error_sigma
        );
        let exact = sphere.analytic_volume;
        assert!((large.estimate - exact).abs() / exact < 0.02);
    }
}
