//! Plain-text table rendering for the harness binaries.

/// Renders an aligned text table: one header row plus data rows. Columns
/// are sized to the widest cell; numeric-looking cells are right-aligned.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let w = widths[i];
            if looks_numeric(cell) {
                line.push_str(&format!("{cell:>w$}"));
            } else {
                line.push_str(&format!("{cell:<w$}"));
            }
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

fn looks_numeric(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_digit() || "+-.eE[], %".contains(c))
        && s.chars().any(|c| c.is_ascii_digit())
}

/// Parses `--key value` style flags from `args`, returning the value for
/// `key` if present.
pub fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Returns `true` if the bare flag is present.
pub fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1.25".into()],
                vec!["b".into(), "100".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // Numeric right-alignment.
        assert!(lines[2].ends_with("1.25"));
        assert!(lines[3].ends_with("100"));
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--reps", "5", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--reps"), Some("5".into()));
        assert_eq!(flag_value(&args, "--samples"), None);
        assert!(has_flag(&args, "--quick"));
        assert!(!has_flag(&args, "--json"));
    }
}
