//! Regenerates the paper's Table 4 (feature ablation on aerospace
//! subjects).
//!
//! Usage: `cargo run --release -p qcoral-bench --bin table4
//!         [--quick] [--stages K] [--seed S] [--json PATH]`
//!
//! The default reproduces the paper's budgets (1K/10K/100K samples);
//! `--quick` uses 1K/10K and a smaller Apollo.

use qcoral_bench::{table4, text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = text::has_flag(&args, "--quick");
    let stages: usize = text::flag_value(&args, "--stages")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 4 } else { 7 });
    let seed: u64 = text::flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20140609);
    let budgets: Vec<u64> = if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };

    eprintln!("Table 4: budgets {budgets:?}, Apollo stages {stages}");
    let rows = table4::run(&budgets, stages, seed);

    let mut out: Vec<Vec<String>> = Vec::new();
    let mut last_key = String::new();
    for r in &rows {
        let key = format!("{} @ {} samples ({} PCs)", r.subject, r.samples, r.pcs);
        if key != last_key {
            out.push(vec![format!("-- {key} --")]);
            last_key = key;
        }
        out.push(vec![
            r.config.clone(),
            format!("{:.5}", r.estimate),
            format!("{:.5}", r.sigma),
            format!("{:.2}", r.secs),
        ]);
    }
    println!(
        "{}",
        text::render(&["configuration", "estimate", "sigma", "time(s)"], &out)
    );
    if let Some(path) = text::flag_value(&args, "--json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&rows).expect("serializable rows"),
        )
        .expect("write json");
    }
}
