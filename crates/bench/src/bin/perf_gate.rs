//! CI perf-regression gate: compares freshly generated `BENCH_*.json`
//! smoke runs against the committed baselines and fails on a geomean
//! regression of more than the threshold (default 25%).
//!
//! ```text
//! perf_gate --baseline ci-baselines --fresh . [--max-regression 1.25]
//! ```
//!
//! Noise tolerance by design: the gate compares *ratios* of matched
//! metrics (per file, per subject, per field), never absolute times —
//! so a uniformly slower CI runner cancels out of nothing, but a single
//! noisy metric is averaged away by the geometric mean over its file.
//! Two metric families are gated:
//!
//! * wall-clock fields (`*_secs`, `*_ms`) from the hot-path and service
//!   benches — machine-relative, hence the geomean-of-ratios;
//! * samples-to-target fields (`adaptive_samples`, `aligned_samples`,
//!   `is_samples_to_target`) from the adaptive, profiles and rare
//!   benches — deterministic efficiency measures where a jump means an
//!   algorithmic regression.
//!
//! Files present only in the baseline fail the gate (the smoke run did
//! not produce them); files present only fresh are noted and skipped
//! (a newly added bench without a committed baseline yet).

use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

/// The gated files and their gated numeric fields.
const GATED: &[(&str, &[&str])] = &[
    (
        "BENCH_hotpath.json",
        &[
            "serial_secs",
            "pred_tape_secs",
            "bulk_eval_secs",
            "mc_bulk_secs",
            // The dispatching-backend probe: native kernels when the
            // smoke run is built with `--features jit`, the interpreter
            // fallback otherwise — gated either way so a codegen
            // regression (or a fallback regression) trips CI.
            "jit_eval_secs",
            "mc_jit_secs",
            // Batched HC4 paving through the unified interval tape.
            "pave_bulk_secs",
            // The untraced analyzer path of the obs_overhead row:
            // instrumentation creep with `Options.trace` off is a
            // hot-path regression like any other.
            "trace_off_secs",
        ],
    ),
    (
        "BENCH_service.json",
        &["cold_ms", "warm_ms", "warm_restart_ms"],
    ),
    ("BENCH_adaptive.json", &["adaptive_samples"]),
    ("BENCH_profiles.json", &["aligned_samples"]),
    // Rare-event IS efficiency: more samples to reach the same target
    // stderr means the proposal adaptation regressed.
    ("BENCH_rare.json", &["is_samples_to_target"]),
];

/// Extracts `(subject, field) -> value` pairs from one of the emitted
/// pretty-printed JSON documents. A full JSON parser is unnecessary:
/// every emitter in this workspace pretty-prints one `"key": value`
/// pair per line, with each row's `"subject"` preceding its metrics.
fn extract(text: &str, fields: &[&str]) -> BTreeMap<(String, String), f64> {
    let mut out = BTreeMap::new();
    let mut subject = String::from("<top>");
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value = value.trim();
        if key == "subject" {
            subject = value.trim_matches('"').to_string();
        } else if fields.contains(&key) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert((subject.clone(), key.to_string()), v);
            }
        }
    }
    out
}

fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

fn usage() -> ! {
    eprintln!("usage: perf_gate --baseline DIR --fresh DIR [--max-regression RATIO]");
    exit(2)
}

fn main() {
    let mut baseline_dir = None;
    let mut fresh_dir = None;
    let mut max_regression = 1.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => baseline_dir = Some(value()),
            "--fresh" => fresh_dir = Some(value()),
            "--max-regression" => {
                max_regression = value().parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let (Some(baseline_dir), Some(fresh_dir)) = (baseline_dir, fresh_dir) else {
        usage()
    };

    let mut failed = false;
    for (file, fields) in GATED {
        let base_path = Path::new(&baseline_dir).join(file);
        let fresh_path = Path::new(&fresh_dir).join(file);
        let Ok(base_text) = std::fs::read_to_string(&base_path) else {
            println!("perf_gate: {file}: no committed baseline yet, skipping");
            continue;
        };
        let Ok(fresh_text) = std::fs::read_to_string(&fresh_path) else {
            println!(
                "perf_gate: FAIL {file}: baseline exists but the smoke run produced no fresh copy"
            );
            failed = true;
            continue;
        };
        let base = extract(&base_text, fields);
        let fresh = extract(&fresh_text, fields);
        let mut ratios = Vec::new();
        let mut rated: Vec<(&(String, String), f64)> = Vec::new();
        for (key, &b) in &base {
            let Some(&f) = fresh.get(key) else {
                // A renamed/removed subject is a baseline-refresh matter,
                // not a perf regression.
                println!(
                    "perf_gate: {file}: metric {}/{} missing fresh, skipping",
                    key.0, key.1
                );
                continue;
            };
            if b > 0.0 && f > 0.0 {
                ratios.push(f / b);
                rated.push((key, f / b));
            }
        }
        let g = geomean(&ratios);
        let verdict = if ratios.is_empty() {
            "no comparable metrics"
        } else if g > max_regression {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "perf_gate: {verdict} {file}: geomean ratio {g:.3} over {} metrics (threshold {max_regression:.2})",
            ratios.len()
        );
        // Per-file worst-regressing row, so a tripped (or near-tripped)
        // gate names the subject and field, not just the geomean.
        rated.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((k, r)) = rated.first() {
            println!("perf_gate:   worst: {}/{}: {r:.3}x", k.0, k.1);
        }
        if g > max_regression {
            for (k, r) in rated.iter().take(5).skip(1) {
                println!("perf_gate:   {}/{}: {r:.3}x", k.0, k.1);
            }
        }
    }
    if failed {
        eprintln!(
            "perf_gate: performance regression above {:.0}% — investigate, or refresh the \
             committed BENCH_*.json baselines if the change is intentional",
            (max_regression - 1.0) * 100.0
        );
        exit(1);
    }
    println!("perf_gate: all gated benchmarks within the regression budget");
}
