//! Regenerates the paper's Figure 2 / Table 1 stratification example.
//!
//! Usage: `cargo run --release -p qcoral-bench --bin table1 [--samples N] [--seed S]`

use qcoral_bench::{table1, text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let samples: u64 = text::flag_value(&args, "--samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let seed: u64 = text::flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20140609);

    println!("Figure 2 / Table 1: x <= -y && y <= x over [-1,1]^2 (exact probability 0.25)");
    println!("Total samples: {samples}\n");

    println!(
        "Per-box breakdown (paper's Table 1; {} samples per sampled box):",
        samples / 4
    );
    let per_box = table1::per_box_table(samples / 4, seed);
    let rows: Vec<Vec<String>> = per_box
        .iter()
        .map(|(name, w, mean, var)| {
            vec![
                name.clone(),
                format!("{w:.4}"),
                format!("{mean:.4}"),
                format!("{var:.4}"),
            ]
        })
        .collect();
    println!("{}", text::render(&["box", "w", "E[X]", "Var[X]"], &rows));

    println!("Method comparison:");
    let rows: Vec<Vec<String>> = table1::run(samples, seed)
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                r.strata.to_string(),
                format!("{:.4}", r.mean),
                format!("{:.3e}", r.variance),
            ]
        })
        .collect();
    println!(
        "{}",
        text::render(&["method", "strata", "mean", "variance"], &rows)
    );
}
