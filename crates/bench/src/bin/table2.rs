//! Regenerates the paper's Table 2 (micro-benchmarks).
//!
//! Usage: `cargo run --release -p qcoral-bench --bin table2
//!         [--reps N] [--quick] [--seed S] [--json PATH]`
//!
//! `--quick` limits the budgets to 10^3..10^4 with 5 repetitions; the
//! default reproduces the paper's protocol (10^3..10^6, 30 repetitions).

use qcoral_bench::{table2, text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = text::has_flag(&args, "--quick");
    let reps: u64 = text::flag_value(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 5 } else { 30 });
    let seed: u64 = text::flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20140609);
    let budgets: Vec<u64> = if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };

    eprintln!(
        "Table 2: {} repetitions per cell, budgets {budgets:?}",
        reps
    );
    let rows = table2::run(&budgets, reps, seed);

    let mut out: Vec<Vec<String>> = Vec::new();
    let mut last_group = String::new();
    for r in &rows {
        if r.group != last_group {
            out.push(vec![format!("-- {} --", r.group)]);
            last_group = r.group.clone();
        }
        out.push(vec![
            r.subject.clone(),
            format!("{:.6}", r.analytic),
            r.samples.to_string(),
            format!("{:.4}", r.estimate),
            format!("{:.4}", r.error_sigma),
            format!("{:.3}", r.secs),
        ]);
    }
    println!(
        "{}",
        text::render(
            &[
                "subject",
                "analytic",
                "samples",
                "estimate",
                "error (sigma)",
                "time(s)"
            ],
            &out
        )
    );
    if let Some(path) = text::flag_value(&args, "--json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&rows).expect("serializable rows"),
        )
        .expect("write json");
    }
}
