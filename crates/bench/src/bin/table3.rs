//! Regenerates the paper's Table 3 (NIntegrate vs VolComp vs qCORAL).
//!
//! Usage: `cargo run --release -p qcoral-bench --bin table3
//!         [--samples N] [--reps R] [--seed S] [--json PATH]`
//!
//! Defaults follow the paper: 30 000 samples; repetitions default to 10
//! (paper: 30) — pass `--reps 30` for the full protocol.

use qcoral_bench::{table3, text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let samples: u64 = text::flag_value(&args, "--samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let reps: u64 = text::flag_value(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let seed: u64 = text::flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20140609);

    eprintln!("Table 3: qCORAL{{STRAT,PARTCACHE}} with {samples} samples, {reps} repetitions");
    let rows = table3::run(samples, reps, seed);

    let mut out: Vec<Vec<String>> = Vec::new();
    let mut last_subject = String::new();
    for r in &rows {
        if r.subject != last_subject {
            out.push(vec![format!("-- {} --", r.subject)]);
            last_subject = r.subject.clone();
        }
        out.push(vec![
            r.assertion.clone(),
            r.paths.to_string(),
            r.ands.to_string(),
            format!("{} ({})", r.ops, r.distinct_ops),
            format!(
                "{:.4}{}",
                r.adaptive_value,
                if r.adaptive_converged { "" } else { "!" }
            ),
            format!("{:.2}", r.adaptive_secs),
            format!("[{:.4}, {:.4}]", r.volcomp_lo, r.volcomp_hi),
            format!("{:.2}", r.volcomp_secs),
            format!("{:.4}", r.qcoral_estimate),
            format!("{:.2e}", r.qcoral_sigma),
            format!("{:.2}", r.qcoral_secs),
        ]);
    }
    println!(
        "{}",
        text::render(
            &[
                "assertion",
                "paths",
                "ands",
                "ar.ops",
                "adaptive",
                "t(s)",
                "volcomp bounds",
                "t(s)",
                "qCORAL est.",
                "sigma",
                "t(s)"
            ],
            &out
        )
    );
    println!("(adaptive value suffixed with `!` = accuracy goal not met, the paper's PACK/NIntegrate situation)");
    if let Some(path) = text::flag_value(&args, "--json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&rows).expect("serializable rows"),
        )
        .expect("write json");
    }
}
