//! Rare-event samples-to-target: the adaptive importance-sampling
//! engine ([`Allocation::ImportanceAdaptive`]) versus classic
//! stratified sampling on the closed-form ~1e-8 suite
//! ([`qcoral_subjects::rare_subjects`]), emitted as `BENCH_rare.json`.
//!
//! Protocol per reachable subject:
//!
//! 1. A *reference* IS run at a fixed budget defines the target
//!    standard error (the `adaptive.rs` idiom: every subject chases a
//!    goal the engine demonstrably reaches). The reference uses the
//!    rare-event recipe — `ImportanceAdaptive` plus a fine paving
//!    (`is_paver_boxes`), the configuration the docs prescribe for
//!    ~1e-8 work.
//! 2. **IS**: the smallest one-shot IS budget whose reported standard
//!    error meets the target, found by doubling from an eighth of the
//!    reference. A run only qualifies if it escalated (`is_factors >
//!    0`) and reported *nonzero* variance — a zero-variance claim on a
//!    sampled rare factor means the budget sits below the engine's
//!    resolution, not that the answer is exact. The winning budget is
//!    re-run in parallel to flag serial/parallel bit-identity
//!    (`is_estimates_identical`).
//! 3. **Stratified**: the baseline is the engine's *shipped default*
//!    configuration — `Options::strat()` with the paper's 10-box
//!    paver — exactly what a user ran before `ImportanceAdaptive`
//!    existed. Running the search empirically is infeasible (budgets
//!    land at 10⁶–10¹⁰ draws), so the row records the *best-case
//!    analytic* budget from the closed-form truth: pooling the default
//!    paving's boundary mass `M` into one stratum whose conditional
//!    hit rate is `q = p_s/M` (`p_s` = truth minus the paver-certified
//!    exact part), a binomial estimator needs `n = p_s·(M −
//!    p_s)/target²` draws. Real stratified allocation splits the
//!    budget across strata and does no better, so `samples_ratio` is a
//!    *lower bound* on the true speedup.
//!
//! Paving is the fundamental lever behind both columns, and the
//! comparison is deliberately asymmetric about it: at a fine paving the
//! ICP paver absorbs most of the rarity itself in low dimension
//! (boundary mass shrinks toward the truth), while at the 10-box
//! default the boundary's conditional hit rate is ~1e-6 or worse and
//! stratified sampling is blind. The two columns therefore quantify
//! the *shipped modes* — the default stratified engine a user starts
//! from versus the documented rare-event recipe — not two allocators
//! on identical pavings.
//!
//! The emitted summary asserts nothing; `min_samples_ratio ≥ 100` and
//! `all_is_identical` are gated by CI and the acceptance check.

use std::sync::Arc;

use serde::Serialize;

use qcoral::{Analyzer, Options, Report};
use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_icp::{domain_box, pave, PaverConfig, PavingCache};
use qcoral_mc::{Allocation, UsageProfile};
use qcoral_subjects::rare_subjects;

/// One rare subject's samples-to-target measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Closed-form ground-truth probability.
    pub truth: f64,
    /// Target standard error both engines chase.
    pub target_stderr: f64,
    /// IS estimate at the winning budget (serial run).
    pub is_estimate: f64,
    /// Standard error the winning IS budget reported.
    pub is_stderr: f64,
    /// Relative error of the IS estimate against truth.
    pub is_rel_error: f64,
    /// Samples the winning IS budget drew.
    pub is_samples_to_target: u64,
    /// Best-case analytic budget of default-configuration stratified
    /// sampling at the same target.
    pub stratified_samples_to_target: u64,
    /// `stratified_samples_to_target / is_samples_to_target`.
    pub samples_ratio: f64,
    /// Serial and parallel runs at the winning budget are bit-identical.
    pub is_estimates_identical: bool,
    /// The winning run escalated to IS (no silent stratified fallback).
    pub escalated: bool,
    /// Boundary profile mass of the default 10-box paving (the pooled
    /// stratum of the analytic bound).
    pub default_boundary_mass: f64,
}

/// The whole emitted document.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Budget of the reference IS run defining each subject's target.
    pub reference_budget: u64,
    /// Paver budget of the IS runs (the rare-event recipe).
    pub is_paver_boxes: usize,
    /// Paver budget of the stratified baseline (the shipped default).
    pub stratified_paver_boxes: usize,
    /// Per-subject rows.
    pub rows: Vec<Row>,
    /// Smallest `samples_ratio` over the rows.
    pub min_samples_ratio: f64,
    /// Every row's serial and parallel estimates are bit-identical.
    pub all_is_identical: bool,
    /// Every row's winning run actually escalated to IS.
    pub all_escalated: bool,
}

fn is_opts(samples: u64, boxes: usize) -> Options {
    let mut opts = Options::strat()
        .with_samples(samples)
        .with_seed(1)
        .with_allocation(Allocation::ImportanceAdaptive);
    opts.paver.max_boxes = boxes;
    opts
}

fn is_run(
    cache: &Arc<PavingCache>,
    cs: &ConstraintSet,
    domain: &Domain,
    profile: &UsageProfile,
    samples: u64,
    boxes: usize,
    parallel: bool,
) -> Report {
    Analyzer::new(is_opts(samples, boxes).with_parallel(parallel))
        .with_paving_cache(Arc::clone(cache))
        .analyze(cs, domain, profile)
}

/// A sampled rare estimate the engine actually stands behind: escalated
/// to IS, carrying a nonzero variance, and *quantified* — the reported
/// standard error is at most half the estimate itself. Without the
/// last clause a tiny budget whose noisy stderr estimate dips under the
/// target by luck can win the search with an order-of-magnitude-off
/// answer.
fn sound(r: &Report) -> bool {
    r.stats.is_factors > 0
        && r.estimate.variance > 0.0
        && r.estimate.std_dev() <= 0.5 * r.estimate.mean
}

/// Exact (inner) and boundary profile mass of the subject's pavings at
/// the *default* paver budget — the inputs to the analytic stratified
/// bound.
fn default_paving_masses(
    cs: &ConstraintSet,
    domain: &Domain,
    profile: &UsageProfile,
) -> (f64, f64) {
    let dbox = domain_box(domain);
    let config = PaverConfig::default();
    let (mut exact, mut boundary) = (0.0, 0.0);
    for pc in cs.pcs() {
        let paving = pave(pc, &dbox, &config);
        for b in &paving.inner {
            exact += profile.box_probability(b, &dbox);
        }
        for b in &paving.boundary {
            boundary += profile.box_probability(b, &dbox);
        }
    }
    (exact, boundary)
}

/// Runs the rare-event samples-to-target protocol.
///
/// `reference_budget` sizes the target-defining IS run; `boxes` sets
/// the IS runs' paver budget (the rare-event recipe).
pub fn run(reference_budget: u64, boxes: usize) -> Summary {
    let mut rows = Vec::new();
    for subj in rare_subjects() {
        if !subj.is_reachable {
            // sin-peaks exists to exercise the deterministic fallback
            // (tests/statistics.rs); it has no IS samples-to-target.
            continue;
        }
        let (cs, domain, profile) = subj.system();
        let truth = subj.truth();
        let cache = Arc::new(PavingCache::new());

        // Reference run: double until the engine produces a sound
        // estimate, then its stderr is the target.
        let mut ref_budget = reference_budget;
        let reference = loop {
            let r = is_run(&cache, &cs, &domain, &profile, ref_budget, boxes, false);
            if sound(&r) || ref_budget >= 1 << 22 {
                break r;
            }
            ref_budget *= 2;
        };
        let target = reference.estimate.std_dev();

        // Smallest IS budget meeting the target, by doubling. No
        // bisection: IS stderr is noisy enough across budgets that the
        // doubling grid is the honest resolution.
        let mut budget = (ref_budget / 8).max(1_024);
        let best = loop {
            let r = is_run(&cache, &cs, &domain, &profile, budget, boxes, false);
            if (sound(&r) && r.estimate.std_dev() <= target) || budget >= ref_budget {
                break r;
            }
            budget *= 2;
        };
        let par = is_run(&cache, &cs, &domain, &profile, budget, boxes, true);
        let identical = best.estimate.mean.to_bits() == par.estimate.mean.to_bits()
            && best.estimate.variance.to_bits() == par.estimate.variance.to_bits();

        let (exact, boundary_mass) = default_paving_masses(&cs, &domain, &profile);
        let sampled_truth = (truth - exact).max(0.0);
        let stratified_samples =
            (sampled_truth * (boundary_mass - sampled_truth) / (target * target)).ceil() as u64;

        rows.push(Row {
            subject: subj.name.to_owned(),
            truth,
            target_stderr: target,
            is_estimate: best.estimate.mean,
            is_stderr: best.estimate.std_dev(),
            is_rel_error: (best.estimate.mean - truth).abs() / truth,
            is_samples_to_target: best.stats.samples_drawn,
            stratified_samples_to_target: stratified_samples,
            samples_ratio: stratified_samples as f64 / best.stats.samples_drawn.max(1) as f64,
            is_estimates_identical: identical,
            escalated: best.stats.is_factors > 0,
            default_boundary_mass: boundary_mass,
        });
    }
    Summary {
        reference_budget,
        is_paver_boxes: boxes,
        stratified_paver_boxes: PaverConfig::default().max_boxes,
        min_samples_ratio: rows
            .iter()
            .map(|r| r.samples_ratio)
            .fold(f64::INFINITY, f64::min),
        all_is_identical: rows.iter().all(|r| r.is_estimates_identical),
        all_escalated: rows.iter().all(|r| r.escalated),
        rows,
    }
}

/// Serializes a summary to `path` as pretty JSON.
pub fn write_json(summary: &Summary, path: &str) -> std::io::Result<()> {
    std::fs::write(
        path,
        serde_json::to_string_pretty(summary).expect("serializable summary"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full protocol at a reduced reference budget — the shipping
    /// target runs under `cargo bench --bench rare`.
    #[test]
    fn protocol_emits_consistent_rows() {
        let s = run(8_192, 128);
        assert_eq!(s.rows.len(), 4, "all reachable subjects measured");
        for r in &s.rows {
            assert!(r.escalated, "{}: must escalate", r.subject);
            assert!(r.is_estimates_identical, "{}: schedules", r.subject);
            assert!(r.is_stderr > 0.0, "{}: honest stderr", r.subject);
            assert!(
                r.samples_ratio >= 100.0,
                "{}: stratified must need ≥100× the samples (got {:.1}×)",
                r.subject,
                r.samples_ratio
            );
        }
        let json = serde_json::to_string_pretty(&s).unwrap();
        assert!(json.contains("\"is_samples_to_target\""));
        assert!(json.contains("\"stratified_samples_to_target\""));
    }
}
