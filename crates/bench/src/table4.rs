//! Table 4: feature ablation on the aerospace subjects.
//!
//! Four configurations per subject and sample budget:
//!
//! 1. `Monte Carlo (baseline)` — whole-disjunction hit-or-miss (the
//!    paper's "Mathematica" Monte Carlo column),
//! 2. `qCORAL{}` — per-PC hit-or-miss with Theorem 1 composition,
//! 3. `qCORAL{STRAT}` — adds ICP stratified sampling,
//! 4. `qCORAL{STRAT,PARTCACHE}` — adds independence partitioning and the
//!    partition cache.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use qcoral::{Analyzer, Options};
use qcoral_baselines::plain_monte_carlo;
use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_icp::domain_box;
use qcoral_mc::UsageProfile;
use qcoral_subjects::{aerospace_subjects_with, AerospaceSubject};
use qcoral_symexec::SymConfig;

/// Configuration labels in table column order.
pub const CONFIGS: [&str; 4] = [
    "Monte Carlo (baseline)",
    "qCORAL{}",
    "qCORAL{STRAT}",
    "qCORAL{STRAT,PARTCACHE}",
];

/// One cell: a subject × sample budget × configuration measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Subject name.
    pub subject: String,
    /// Number of quantified PCs (70% of complete paths).
    pub pcs: usize,
    /// Sample budget per analyzed sub-problem (the baseline receives
    /// `samples × pcs` in total, matching the per-PC analyses' work).
    pub samples: u64,
    /// Configuration label (one of [`CONFIGS`]).
    pub config: String,
    /// Estimated probability.
    pub estimate: f64,
    /// Reported σ.
    pub sigma: f64,
    /// Wall time (s).
    pub secs: f64,
}

/// Runs the full Table 4 protocol over the three subjects. `apollo_stages`
/// scales the Apollo path count (7 in the shipped tables).
pub fn run(sample_budgets: &[u64], apollo_stages: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for subj in aerospace_subjects_with(apollo_stages) {
        rows.extend(run_subject(&subj, sample_budgets, seed));
    }
    rows
}

/// Runs one subject across all budgets and configurations.
pub fn run_subject(subj: &AerospaceSubject, sample_budgets: &[u64], seed: u64) -> Vec<Row> {
    let (domain, cs) = subj.constraint_set(&SymConfig::default());
    let mut rows = Vec::new();
    for &samples in sample_budgets {
        rows.extend(run_cell(subj.name, &domain, &cs, samples, seed));
    }
    rows
}

/// Runs the four configurations for one subject at one budget.
pub fn run_cell(
    name: &str,
    domain: &Domain,
    cs: &ConstraintSet,
    samples: u64,
    seed: u64,
) -> Vec<Row> {
    let profile = UsageProfile::uniform(domain.len());
    let dbox = domain_box(domain);
    let mut rows = Vec::new();

    // Baseline: whole-disjunction hit-or-miss. The per-PC analyses below
    // get `samples` per sub-problem (the paper's "maximum number of
    // samples allowed for simulation"), so the baseline gets the same
    // total budget — capped, because each whole-disjunction sample costs
    // O(#PCs) membership tests and the product becomes quadratic on
    // many-PC subjects (the blow-up behind the paper's slow Mathematica
    // Monte Carlo column).
    const BASELINE_SAMPLE_CAP: u64 = 2_000_000;
    let t0 = Instant::now();
    let mut rng = SmallRng::seed_from_u64(seed);
    let total = samples
        .saturating_mul(cs.len().max(1) as u64)
        .clamp(1, BASELINE_SAMPLE_CAP);
    let base = plain_monte_carlo(cs, &dbox, &profile, total, &mut rng);
    rows.push(Row {
        subject: name.to_owned(),
        pcs: cs.len(),
        samples,
        config: CONFIGS[0].to_owned(),
        estimate: base.mean,
        sigma: base.std_dev(),
        secs: t0.elapsed().as_secs_f64(),
    });

    let configs = [
        (CONFIGS[1], Options::plain()),
        (CONFIGS[2], Options::strat()),
        (CONFIGS[3], Options::strat_partcache()),
    ];
    for (label, opts) in configs {
        let opts = opts.with_samples(samples).with_seed(seed);
        let report = Analyzer::new(opts).analyze(cs, domain, &profile);
        rows.push(Row {
            subject: name.to_owned(),
            pcs: cs.len(),
            samples,
            config: label.to_owned(),
            estimate: report.estimate.mean,
            sigma: report.estimate.std_dev(),
            secs: report.wall.as_secs_f64(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_subjects::aerospace_subjects_with;

    #[test]
    fn configs_agree_and_strat_reduces_sigma() {
        // Conflict at a modest budget: all four configs estimate the same
        // probability; STRAT variants report smaller σ than qCORAL{}.
        let subj = &aerospace_subjects_with(3)[1];
        let rows = run_subject(subj, &[20_000], 9);
        assert_eq!(rows.len(), 4);
        let means: Vec<f64> = rows.iter().map(|r| r.estimate).collect();
        for w in means.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 0.08,
                "config estimates diverge: {means:?}"
            );
        }
        let plain_sigma = rows[1].sigma;
        let strat_sigma = rows[2].sigma;
        assert!(
            strat_sigma <= plain_sigma * 1.2,
            "STRAT {strat_sigma} should not be much worse than plain {plain_sigma}"
        );
    }

    #[test]
    fn apollo_partcache_runs_and_matches() {
        let subj = &aerospace_subjects_with(3)[0];
        let rows = run_subject(subj, &[4_000], 3);
        let strat = rows.iter().find(|r| r.config == CONFIGS[2]).unwrap();
        let cache = rows.iter().find(|r| r.config == CONFIGS[3]).unwrap();
        assert!(
            (strat.estimate - cache.estimate).abs() < 0.1,
            "{} vs {}",
            strat.estimate,
            cache.estimate
        );
    }
}
