//! Criterion bench for the quantification hot path: serial vs parallel
//! analyzer and tree-walk vs compiled-tape predicate evaluation on the
//! biggest multi-PC Table 3 subject, plus the `BENCH_hotpath.json`
//! emitter that records the full per-subject trajectory.
//!
//! Run with `cargo bench -p qcoral-bench --bench hotpath`. The JSON lands
//! at the workspace root (override with `BENCH_HOTPATH_OUT`). On a
//! single-core container `parallel_speedup` is necessarily ≈ 1; the
//! fan-out is validated for correctness by `tests/determinism.rs` and for
//! speed by `pred_tape_speedup` plus multi-core runs.

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::{Analyzer, Options};
use qcoral_bench::hotpath;
use qcoral_mc::UsageProfile;
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

const SAMPLES: u64 = 100_000;

fn bench_hotpath(c: &mut Criterion) {
    // EGFR EPI is the widest workload: 41 disjoint path conditions.
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "EGFR EPI")
        .expect("subject exists");
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache()
        .with_samples(SAMPLES)
        .with_seed(1);

    let mut g = c.benchmark_group("hotpath_egfr_100k");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            Analyzer::new(opts.clone())
                .analyze(&cs, &domain, &profile)
                .estimate
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            Analyzer::new(opts.clone().with_parallel(true))
                .analyze(&cs, &domain, &profile)
                .estimate
        })
    });
    // Warm paving cache (the steady-state server scenario: the same
    // analyzer answers many queries).
    g.bench_function("parallel_warm_cache", |b| {
        let analyzer = Analyzer::new(opts.clone().with_parallel(true));
        analyzer.analyze(&cs, &domain, &profile);
        b.iter(|| analyzer.analyze(&cs, &domain, &profile).estimate)
    });
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let summary = hotpath::run(SAMPLES, 3);
    let path = std::env::var("BENCH_HOTPATH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    hotpath::write_json(&summary, &path).expect("write BENCH_hotpath.json");
    println!(
        "hotpath summary: threads={} parallel_speedup(geomean)={:.2} pred_tape_speedup(geomean)={:.2} bulk_eval_speedup(geomean)={:.2} mc_bulk_speedup(geomean)={:.2} jit_eval_speedup(geomean)={:.2} mc_jit_speedup(geomean)={:.2} -> {path}",
        summary.threads,
        summary.parallel_speedup_geomean,
        summary.pred_tape_speedup_geomean,
        summary.bulk_eval_speedup_geomean,
        summary.mc_bulk_speedup_geomean,
        summary.jit_eval_speedup_geomean,
        summary.mc_jit_speedup_geomean
    );
    for r in &summary.rows {
        println!(
            "  {:28} pcs={:4} serial={:.3}s parallel={:.3}s (x{:.2}) pred tree={:.4}s tape={:.4}s (x{:.1}) bulk {:.2e}→{:.2e} samples/s (x{:.2}) mc x{:.2} {} {:.2e} samples/s (x{:.2}) mc x{:.2} identical={}",
            r.subject,
            r.paths,
            r.serial_secs,
            r.parallel_secs,
            r.parallel_speedup,
            r.pred_tree_secs,
            r.pred_tape_secs,
            r.pred_tape_speedup,
            r.scalar_samples_per_sec,
            r.bulk_samples_per_sec,
            r.bulk_eval_speedup,
            r.mc_bulk_speedup,
            r.jit_backend,
            r.jit_samples_per_sec,
            r.jit_eval_speedup,
            r.mc_jit_speedup,
            r.estimates_identical && r.jit_estimates_identical
        );
    }
    assert!(
        summary.rows.iter().all(|r| r.bulk_estimates_identical),
        "columnar bulk sampling diverged from the scalar tape"
    );
    assert!(
        summary.rows.iter().all(|r| r.jit_estimates_identical),
        "JIT sampling diverged from the interpreter"
    );
}

criterion_group!(benches, bench_hotpath, emit_json);
criterion_main!(benches);
