//! Design-choice ablations beyond the paper's tables:
//!
//! * paver box budget (the paper fixes 10 boxes per query),
//! * stratum sample allocation (equal — the paper's choice — vs
//!   proportional),
//! * sequential vs parallel PC analysis (Theorem 1 permits parallelism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcoral::{Allocation, Analyzer, Options, PaverConfig};
use qcoral_mc::UsageProfile;
use qcoral_subjects::{aerospace_subjects_with, all_solids};
use qcoral_symexec::SymConfig;

fn bench_box_budget(c: &mut Criterion) {
    let solids = all_solids();
    let sphere = solids.iter().find(|s| s.name == "Sphere").expect("sphere");
    let profile = UsageProfile::uniform(3);
    let mut g = c.benchmark_group("ablation_box_budget");
    g.sample_size(10);
    for budget in [4usize, 10, 32, 128] {
        g.bench_with_input(BenchmarkId::new("sphere", budget), &budget, |b, &n| {
            let opts = Options::strat()
                .with_samples(10_000)
                .with_paver(PaverConfig {
                    max_boxes: n,
                    ..PaverConfig::default()
                });
            let analyzer = Analyzer::new(opts);
            b.iter(|| analyzer.analyze(&sphere.constraint_set, &sphere.domain, &profile));
        });
    }
    g.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let solids = all_solids();
    let torus = solids.iter().find(|s| s.name == "Torus").expect("torus");
    let profile = UsageProfile::uniform(3);
    let mut g = c.benchmark_group("ablation_allocation");
    g.sample_size(10);
    for (label, alloc) in [
        ("equal", Allocation::EqualPerStratum),
        ("proportional", Allocation::Proportional),
    ] {
        g.bench_function(label, |b| {
            let mut opts = Options::strat().with_samples(10_000);
            opts.allocation = alloc;
            let analyzer = Analyzer::new(opts);
            b.iter(|| analyzer.analyze(&torus.constraint_set, &torus.domain, &profile));
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let subj = &aerospace_subjects_with(4)[0]; // Apollo, smaller
    let (domain, cs) = subj.constraint_set(&SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let mut g = c.benchmark_group("ablation_parallel");
    g.sample_size(10);
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        g.bench_function(label, |b| {
            let opts = Options::strat_partcache()
                .with_samples(1_000)
                .with_parallel(parallel);
            let analyzer = Analyzer::new(opts);
            b.iter(|| analyzer.analyze(&cs, &domain, &profile));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_box_budget, bench_allocation, bench_parallel);
criterion_main!(benches);
