//! Criterion bench for Table 4: the four analyzer configurations on the
//! TSAFE Conflict Probe.

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::{Analyzer, Options};
use qcoral_baselines::plain_monte_carlo;
use qcoral_icp::domain_box;
use qcoral_mc::UsageProfile;
use qcoral_subjects::aerospace_subjects;
use qcoral_symexec::SymConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_configs(c: &mut Criterion) {
    let subj = &aerospace_subjects()[1]; // Conflict
    let (domain, cs) = subj.constraint_set(&SymConfig::default());
    let dbox = domain_box(&domain);
    let profile = UsageProfile::uniform(domain.len());
    let samples = 10_000u64;
    let per_pc = (samples / cs.len().max(1) as u64).max(100);

    let mut g = c.benchmark_group("table4_conflict_10k");
    g.sample_size(10);
    g.bench_function("baseline_mc", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            plain_monte_carlo(&cs, &dbox, &profile, samples, &mut rng)
        })
    });
    for (label, opts) in [
        ("qcoral_plain", Options::plain()),
        ("qcoral_strat", Options::strat()),
        ("qcoral_strat_partcache", Options::strat_partcache()),
    ] {
        let opts = opts.with_samples(per_pc).with_seed(1);
        g.bench_function(label, |b| {
            let analyzer = Analyzer::new(opts.clone());
            b.iter(|| analyzer.analyze(&cs, &domain, &profile))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
