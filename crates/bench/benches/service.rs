//! Criterion bench for the quantification service: loopback round-trip
//! latency cold vs warm, plus the `BENCH_service.json` emitter recording
//! the full cold/warm/warm-after-restart trajectory per subject.
//!
//! Run with `cargo bench -p qcoral-bench --bench service`. The JSON
//! lands at the workspace root (override with `BENCH_SERVICE_OUT`).
//! Warm-cache queries are answered from the persistent factor store
//! with zero new pavings and zero new samples (asserted by the runner),
//! so the cold/warm gap is the paving+sampling work the store saves.

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::Options;
use qcoral_bench::service;
use qcoral_service::{Client, Server, ServiceConfig};
use qcoral_subjects::table3_subjects;

const SAMPLES: u64 = 20_000;

fn bench_roundtrip(c: &mut Criterion) {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "EGFR EPI")
        .expect("subject exists");
    let source = subj.source_for(0);
    let opts = Options::default().with_samples(SAMPLES).with_seed(1);

    let server = Server::start(ServiceConfig::default()).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut g = c.benchmark_group("service_egfr_20k");
    g.sample_size(10);
    let mut first = true;
    g.bench_function("query_cold_then_warm", |b| {
        b.iter(|| {
            // The first iteration is the only truly cold one; the rest
            // measure the steady-state warm service.
            let r = client
                .analyze_program(&source, opts.clone(), None, None)
                .expect("query");
            if !first {
                assert_eq!(r.report.stats.samples_drawn, 0, "warm query sampled");
            }
            first = false;
            r.report.estimate
        })
    });
    g.finish();
    server.shutdown();
}

fn emit_json(_c: &mut Criterion) {
    let summary = service::run(SAMPLES);
    let path = std::env::var("BENCH_SERVICE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));
    service::write_json(&summary, &path).expect("write BENCH_service.json");
    println!(
        "service summary: workers={} warm_speedup(geomean)={:.1} cold={:.0}ms warm={:.0}ms restart={:.0}ms -> {path}",
        summary.workers,
        summary.warm_speedup_geomean,
        summary.cold_total_ms,
        summary.warm_total_ms,
        summary.warm_restart_total_ms
    );
    for r in &summary.rows {
        println!(
            "  {:28} cold={:8.2}ms warm={:6.2}ms (x{:6.1}) restart={:6.2}ms store_hits={:3} cold_pavings={:3} identical={}",
            r.subject,
            r.cold_ms,
            r.warm_ms,
            r.warm_speedup,
            r.warm_restart_ms,
            r.warm_store_hits,
            r.cold_pavings,
            r.estimates_identical
        );
    }
}

criterion_group!(benches, bench_roundtrip, emit_json);
criterion_main!(benches);
