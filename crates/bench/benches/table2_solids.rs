//! Criterion bench for Table 2: full-qCORAL volume estimation per solid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcoral_bench::table2;
use qcoral_subjects::all_solids;

fn bench_solids(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let solids = all_solids();
    for name in ["Cube", "Sphere", "Torus", "Two spheres intersection"] {
        let solid = solids.iter().find(|s| s.name == name).expect("known solid");
        g.bench_with_input(BenchmarkId::new("solid", name), solid, |b, s| {
            b.iter(|| table2::run_one(s, 10_000, 1, 7));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solids);
criterion_main!(benches);
