//! Criterion bench for the rare-event importance-sampling engine: wall
//! time of one `ImportanceAdaptive` analysis on a ~1e-8 subject, plus
//! the `BENCH_rare.json` emitter recording samples-to-target for IS
//! versus the best-case analytic stratified budget over the closed-form
//! rare suite.
//!
//! Run with `cargo bench -p qcoral-bench --bench rare`. The JSON lands
//! at the workspace root (override with `BENCH_RARE_OUT`).

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::{Analyzer, Options};
use qcoral_bench::rare;
use qcoral_mc::Allocation;
use qcoral_subjects::rare_subjects;

fn bench_is(c: &mut Criterion) {
    let subj = rare_subjects()
        .into_iter()
        .find(|s| s.name == "sum-tail-2d")
        .expect("subject exists");
    let (cs, domain, profile) = subj.system();
    let mut opts = Options::strat()
        .with_samples(16_384)
        .with_seed(1)
        .with_allocation(Allocation::ImportanceAdaptive);
    opts.paver.max_boxes = 128;
    // One analyzer across iterations: the paving warms after the first
    // run, so steady-state iterations measure the IS rounds themselves.
    let analyzer = Analyzer::new(opts);
    let mut g = c.benchmark_group("rare_sum_tail_2d_16k");
    g.sample_size(10);
    g.bench_function("importance_adaptive", |b| {
        b.iter(|| {
            let r = analyzer.analyze(&cs, &domain, &profile);
            assert!(r.stats.is_factors > 0, "IS engaged");
            r.estimate
        })
    });
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let summary = rare::run(65_536, 128);
    let path = std::env::var("BENCH_RARE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_rare.json", env!("CARGO_MANIFEST_DIR")));
    rare::write_json(&summary, &path).expect("write BENCH_rare.json");
    println!(
        "rare summary: min samples ratio = {:.0}x, all_is_identical = {}, all_escalated = {} -> {path}",
        summary.min_samples_ratio, summary.all_is_identical, summary.all_escalated
    );
    for r in &summary.rows {
        println!(
            "  {:14} truth={:9.3e} est={:9.3e} (rel err {:6.1}%) is={:8} strat={:14} ratio={:10.0}x identical={}",
            r.subject,
            r.truth,
            r.is_estimate,
            100.0 * r.is_rel_error,
            r.is_samples_to_target,
            r.stratified_samples_to_target,
            r.samples_ratio,
            r.is_estimates_identical
        );
    }
}

criterion_group!(benches, bench_is, emit_json);
criterion_main!(benches);
