//! Criterion bench for Table 3: the three methods on one representative
//! subject/assertion (EGFR EPI SIMPLE, `f1 <= 4.4 && f >= 4.6`).

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::{Analyzer, Options};
use qcoral_baselines::{adaptive_probability, volcomp_bounds, AdaptiveConfig, VolCompConfig};
use qcoral_icp::domain_box;
use qcoral_mc::UsageProfile;
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

fn bench_methods(c: &mut Criterion) {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "EGFR EPI (SIMPLE)")
        .expect("subject exists");
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let dbox = domain_box(&domain);
    let profile = UsageProfile::uniform(domain.len());

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("adaptive", |b| {
        b.iter(|| adaptive_probability(&cs, &dbox, &AdaptiveConfig::default()))
    });
    g.bench_function("volcomp", |b| {
        b.iter(|| volcomp_bounds(&cs, &dbox, &VolCompConfig::default()))
    });
    g.bench_function("qcoral_strat_partcache", |b| {
        b.iter(|| {
            Analyzer::new(Options::strat_partcache().with_samples(30_000).with_seed(1))
                .analyze(&cs, &domain, &profile)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
