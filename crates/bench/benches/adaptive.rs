//! Criterion bench for the iterative, variance-driven engine: wall time
//! of `analyze_iterative` chasing a target on a mixed subject, plus the
//! `BENCH_adaptive.json` emitter recording samples-to-target for the
//! adaptive engine versus static `Proportional` allocation over the
//! VolComp suite.
//!
//! Run with `cargo bench -p qcoral-bench --bench adaptive`. The JSON
//! lands at the workspace root (override with `BENCH_ADAPTIVE_OUT`).

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::{Analyzer, Options};
use qcoral_bench::adaptive;
use qcoral_mc::UsageProfile;
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

fn bench_iterative(c: &mut Criterion) {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "CORONARY")
        .expect("subject exists");
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache()
        .with_samples(2_000)
        .with_seed(1)
        .with_target_stderr(1e-3)
        .with_round_budget(2_000)
        .with_max_rounds(64);
    // One analyzer across iterations: pavings warm after the first run,
    // so steady-state iterations measure the sampling rounds themselves.
    let analyzer = Analyzer::new(opts);
    let mut g = c.benchmark_group("adaptive_coronary_1e-3");
    g.sample_size(10);
    g.bench_function("analyze_iterative", |b| {
        b.iter(|| {
            let r = analyzer.analyze_iterative(&cs, &domain, &profile);
            assert!(r.stats.target_met, "target reachable");
            r.estimate
        })
    });
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let summary = adaptive::run(16_000, 2_000);
    let path = std::env::var("BENCH_ADAPTIVE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_adaptive.json", env!("CARGO_MANIFEST_DIR")));
    adaptive::write_json(&summary, &path).expect("write BENCH_adaptive.json");
    println!(
        "adaptive summary: mixed samples saved (geomean) = {:.2}x, adaptive_wins_all_mixed = {} -> {path}",
        summary.mixed_samples_saved_geomean, summary.adaptive_wins_all_mixed
    );
    for r in &summary.rows {
        println!(
            "  {:28} target σ={:9.3e} mixed={:5} static={:8} adaptive={:8} rounds={:4} saved={:5.2}x met={}",
            r.subject,
            r.target_stderr,
            r.mixed,
            r.static_samples,
            r.adaptive_samples,
            r.adaptive_rounds,
            r.samples_saved,
            r.adaptive_target_met
        );
    }
}

criterion_group!(benches, bench_iterative, emit_json);
criterion_main!(benches);
