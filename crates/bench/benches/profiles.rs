//! Criterion bench for non-uniform usage profiles: wall time of a
//! profile-aligned analysis on a peaked subject, plus the
//! `BENCH_profiles.json` emitter recording samples-to-target for
//! profile-aligned stratification versus the uniform-strata reweighting
//! baseline over the non-uniform VolComp suite.
//!
//! Run with `cargo bench -p qcoral-bench --bench profiles`. The JSON
//! lands at the workspace root (override with `BENCH_PROFILES_OUT`).

use criterion::{criterion_group, criterion_main, Criterion};
use qcoral::{Analyzer, Options};
use qcoral_bench::profiles;
use qcoral_subjects::nonuniform_subjects;
use qcoral_symexec::SymConfig;

fn bench_aligned_analysis(c: &mut Criterion) {
    let subjects = nonuniform_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == "CORONARY·clinic")
        .expect("subject exists");
    let (domain, cs, profile) = subj.system(&SymConfig::default());
    // One analyzer across iterations: pavings warm after the first run,
    // so steady-state iterations measure discretization + aligned
    // stratified sampling.
    let analyzer = Analyzer::new(Options::strat().with_samples(10_000));
    let mut g = c.benchmark_group("profiles_coronary_clinic");
    g.sample_size(10);
    g.bench_function("aligned_analyze_10k", |b| {
        b.iter(|| analyzer.analyze(&cs, &domain, &profile).estimate)
    });
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let summary = profiles::run(16_000);
    let path = std::env::var("BENCH_PROFILES_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_profiles.json", env!("CARGO_MANIFEST_DIR")));
    profiles::write_json(&summary, &path).expect("write BENCH_profiles.json");
    println!(
        "profiles summary: samples saved (geomean) = {:.2}x, aligned wins {}/{} -> {path}",
        summary.samples_saved_geomean, summary.aligned_wins, summary.contested
    );
    for r in &summary.rows {
        println!(
            "  {:18} target σ={:9.3e} aligned={:8} (σ {:9.3e}, {:3} strata) reweighted={:8} (σ {:9.3e}) saved={:5.2}x{}",
            r.subject,
            r.target_stderr,
            r.aligned_samples,
            r.aligned_stderr,
            r.aligned_strata,
            r.reweighted_samples,
            r.reweighted_stderr,
            r.samples_saved,
            if r.trivial { " (exact)" } else { "" }
        );
    }
}

criterion_group!(benches, bench_aligned_analysis, emit_json);
criterion_main!(benches);
