//! Criterion bench for the Figure 2 example: plain hit-or-miss vs
//! stratified sampling at the same sample budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcoral_bench::table1;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    for samples in [1_000u64, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("all_methods", samples),
            &samples,
            |b, &n| {
                b.iter(|| table1::run(n, 42));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
